//! Live service counters, shared between the front end and its workers.
//!
//! Every handle here is registered on the sorter's [`Inspector`], and
//! registration is idempotent: the batching worker, the out-of-core lane
//! and the [`SortService`](crate::SortService) front end each call
//! [`ServiceCounters::register`] independently and all update the *same*
//! atomic cells.  That is what makes
//! [`SortService::stats_snapshot`](crate::SortService::stats_snapshot)
//! live — no channel round trip, no shutdown, no locks on the hot path.

use crate::batch::FlushSummary;
use crate::request::{FlushReason, KeyClass, SubmitError, TicketError};
use crate::service::ServiceStats;
use multi_gpu::telemetry_paths as fault_paths;
use std::sync::Arc;
use std::time::Duration;
use telemetry::{Counter, Gauge, Histogram, HistogramSnapshot, Inspector};

/// Handles to every `service/...` metric, one registration per holder.
#[derive(Debug)]
pub(crate) struct ServiceCounters {
    requests: Counter,
    batches: Counter,
    elements: Counter,
    max_batch_requests: Gauge,
    batch_requests: Histogram,
    flushed_by_bytes: Counter,
    flushed_by_linger: Counter,
    flushed_by_cap: Counter,
    flushed_by_deadline: Counter,
    flushed_by_drain: Counter,
    rejected_saturated: Counter,
    rejected_too_large: Counter,
    rejected_too_many_keys: Counter,
    rejected_mismatched: Counter,
    rejected_degraded: Counter,
    cancelled: Counter,
    deadline_exceeded: Counter,
    worker_failures: Counter,
    sort_failures: Counter,
    ooc_requests: Counter,
    ooc_chunks: Counter,
    ooc_latency_ns: Histogram,
    /// The engine's fault-recovery metrics (registered by the sharded
    /// engine under `multi_gpu/faults/...`; re-registered here idempotently
    /// so the service can surface them in [`ServiceStats`]).
    device_failures: Counter,
    requeued_elements: Counter,
    recovery_ns: Histogram,
    /// Per-class submit→outcome latency histograms (`u32`, `u64`), kept so
    /// the snapshot can merge them with the lane's into service-wide
    /// percentiles.
    class_latency: Vec<Histogram>,
}

impl ServiceCounters {
    /// Registers (or retrieves — registration is idempotent) the service
    /// counter set on `inspector`.
    pub(crate) fn register(inspector: &Inspector) -> Arc<ServiceCounters> {
        Arc::new(ServiceCounters {
            requests: inspector.counter("service/requests"),
            batches: inspector.counter("service/batches"),
            elements: inspector.counter("service/elements"),
            max_batch_requests: inspector.gauge("service/max_batch_requests"),
            batch_requests: inspector.histogram("service/batch_requests"),
            flushed_by_bytes: inspector.counter("service/flushed/bytes"),
            flushed_by_linger: inspector.counter("service/flushed/linger"),
            flushed_by_cap: inspector.counter("service/flushed/request_cap"),
            flushed_by_deadline: inspector.counter("service/flushed/deadline"),
            flushed_by_drain: inspector.counter("service/flushed/drain"),
            rejected_saturated: inspector.counter("service/rejected/saturated"),
            rejected_too_large: inspector.counter("service/rejected/too_large"),
            rejected_too_many_keys: inspector.counter("service/rejected/too_many_keys"),
            rejected_mismatched: inspector.counter("service/rejected/mismatched_pair"),
            rejected_degraded: inspector.counter("service/rejected/degraded"),
            cancelled: inspector.counter("service/cancelled"),
            deadline_exceeded: inspector.counter("service/deadline_exceeded"),
            worker_failures: inspector.counter("service/worker_failures"),
            sort_failures: inspector.counter("service/sort_failures"),
            device_failures: inspector.counter(fault_paths::FAULT_DEVICE_FAILURES),
            requeued_elements: inspector.counter(fault_paths::FAULT_REQUEUED_ELEMENTS),
            recovery_ns: inspector.histogram(fault_paths::FAULT_RECOVERY_NS),
            ooc_requests: inspector.counter("service/ooc/requests"),
            ooc_chunks: inspector.counter("service/ooc/chunks"),
            ooc_latency_ns: inspector.histogram("service/ooc/latency_ns"),
            class_latency: [KeyClass::U32, KeyClass::U64]
                .iter()
                .map(|c| inspector.histogram(&format!("service/class/{}/latency_ns", c.label())))
                .collect(),
        })
    }

    /// One request made it past admission control (either lane).
    pub(crate) fn note_admitted(&self) {
        self.requests.inc();
    }

    /// One request bounced; `ShuttingDown` is deliberately uncounted (it
    /// describes the service's state, not the request).
    pub(crate) fn note_rejected(&self, err: &SubmitError) {
        match err {
            SubmitError::Saturated { .. } => self.rejected_saturated.inc(),
            SubmitError::TooLarge { .. } => self.rejected_too_large.inc(),
            SubmitError::TooManyKeys { .. } => self.rejected_too_many_keys.inc(),
            SubmitError::MismatchedPair { .. } => self.rejected_mismatched.inc(),
            SubmitError::Degraded { .. } => self.rejected_degraded.inc(),
            SubmitError::ShuttingDown => {}
        }
    }

    /// One batch flushed through a class queue.
    pub(crate) fn note_flush(&self, summary: &FlushSummary) {
        // Release: publishes the request increments of everything in this
        // batch (they happen-before the flush via the submission channel),
        // so an acquire read of `batches` in `stats_snapshot` always sees
        // at least as many requests — `requests ≥ batches` at any instant.
        self.batches.inc_release();
        self.elements.add(summary.elements);
        self.max_batch_requests.set_max(summary.requests as u64);
        self.batch_requests.record(summary.requests as u64);
        match summary.reason {
            FlushReason::Bytes => self.flushed_by_bytes.inc(),
            FlushReason::Linger => self.flushed_by_linger.inc(),
            FlushReason::RequestCap => self.flushed_by_cap.inc(),
            FlushReason::Deadline => self.flushed_by_deadline.inc(),
            FlushReason::Drain => self.flushed_by_drain.inc(),
            // The out-of-core lane never rides a class queue.
            FlushReason::OutOfCore => {}
        }
    }

    /// One admitted request resolved with an error instead of an outcome.
    /// `ServiceDropped` is deliberately uncounted here: it never travels
    /// through a resolution channel (it *is* the channel dying).
    pub(crate) fn note_failed(&self, err: &TicketError) {
        match err {
            TicketError::Cancelled => self.cancelled.inc(),
            TicketError::DeadlineExceeded => self.deadline_exceeded.inc(),
            TicketError::SortFailed(_) => self.sort_failures.inc(),
            TicketError::WorkerFailed | TicketError::ServiceDropped => {}
        }
    }

    /// One worker panic was caught and isolated.
    pub(crate) fn note_worker_failure(&self) {
        self.worker_failures.inc();
    }

    /// One request resolved through the out-of-core lane.
    pub(crate) fn note_ooc(&self, elements: u64, chunks: u64, latency: Duration) {
        self.ooc_requests.inc();
        self.ooc_chunks.add(chunks);
        self.elements.add(elements);
        self.ooc_latency_ns.record_duration(latency);
    }

    /// The merged submit→outcome latency distribution across both key
    /// classes and the out-of-core lane.
    pub(crate) fn latency_snapshot(&self) -> HistogramSnapshot {
        let parts: Vec<HistogramSnapshot> = self
            .class_latency
            .iter()
            .chain(std::iter::once(&self.ooc_latency_ns))
            .map(Histogram::snapshot)
            .collect();
        HistogramSnapshot::merged(parts.iter())
    }

    /// A consistent-enough read of every counter, at any moment.
    pub(crate) fn stats_snapshot(&self) -> ServiceStats {
        let latency = self.latency_snapshot();
        // Acquire-read `batches` strictly before `requests`: a request is
        // counted at admission, which happens-before the release increment
        // in `note_flush` (the submission travels over a channel), so the
        // acquire here makes every request of every observed batch visible
        // to the `requests` read below — `requests ≥ batches` holds in
        // every snapshot, even mid-flood.  A plain relaxed read ordered
        // only in program order would not guarantee that.
        let batches = self.batches.get_acquire();
        let recovery = self.recovery_ns.snapshot();
        ServiceStats {
            requests: self.requests.get(),
            batches,
            max_batch_requests: self.max_batch_requests.get() as usize,
            elements: self.elements.get(),
            flushed_by_bytes: self.flushed_by_bytes.get(),
            flushed_by_linger: self.flushed_by_linger.get(),
            flushed_by_cap: self.flushed_by_cap.get(),
            flushed_by_deadline: self.flushed_by_deadline.get(),
            flushed_by_drain: self.flushed_by_drain.get(),
            ooc_requests: self.ooc_requests.get(),
            ooc_chunks: self.ooc_chunks.get(),
            rejected_saturated: self.rejected_saturated.get(),
            rejected_too_large: self.rejected_too_large.get(),
            rejected_too_many_keys: self.rejected_too_many_keys.get(),
            rejected_mismatched_pairs: self.rejected_mismatched.get(),
            rejected_degraded: self.rejected_degraded.get(),
            cancelled: self.cancelled.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            worker_failures: self.worker_failures.get(),
            sort_failures: self.sort_failures.get(),
            device_failures: self.device_failures.get(),
            requeued_elements: self.requeued_elements.get(),
            recovery_p50: Duration::from_nanos(recovery.p50()),
            recovery_p99: Duration::from_nanos(recovery.p99()),
            latency_p50: Duration::from_nanos(latency.p50()),
            latency_p99: Duration::from_nanos(latency.p99()),
        }
    }
}

/// Per-class live handles: queue-depth/pending-bytes gauges plus the
/// class's submit→outcome latency histogram.
#[derive(Debug, Clone)]
pub(crate) struct ClassProbe {
    pub(crate) queue_depth: Gauge,
    pub(crate) pending_bytes: Gauge,
    pub(crate) latency_ns: Histogram,
}

impl ClassProbe {
    /// Registers the probe for `class` under `service/class/<label>/`.
    pub(crate) fn register(inspector: &Inspector, class: KeyClass) -> ClassProbe {
        let path = |leaf: &str| format!("service/class/{}/{leaf}", class.label());
        ClassProbe {
            queue_depth: inspector.gauge(&path("queue_depth")),
            pending_bytes: inspector.gauge(&path("pending_bytes")),
            latency_ns: inspector.histogram(&path("latency_ns")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_shares_cells_across_holders() {
        let inspector = Inspector::new();
        let a = ServiceCounters::register(&inspector);
        let b = ServiceCounters::register(&inspector);
        a.note_admitted();
        b.note_admitted();
        assert_eq!(a.stats_snapshot().requests, 2);
        assert_eq!(b.stats_snapshot().requests, 2);
    }

    #[test]
    fn rejection_taxonomy_maps_onto_counters() {
        let inspector = Inspector::new();
        let c = ServiceCounters::register(&inspector);
        c.note_rejected(&SubmitError::Saturated {
            in_flight: 1,
            queue_depth: 1,
        });
        c.note_rejected(&SubmitError::TooLarge {
            bytes: 2,
            budget: 1,
        });
        c.note_rejected(&SubmitError::TooManyKeys { keys: 9, max: 8 });
        c.note_rejected(&SubmitError::MismatchedPair { keys: 2, values: 1 });
        c.note_rejected(&SubmitError::ShuttingDown);
        let stats = c.stats_snapshot();
        assert_eq!(stats.rejected_saturated, 1);
        assert_eq!(stats.rejected_too_large, 1);
        assert_eq!(stats.rejected_too_many_keys, 1);
        assert_eq!(stats.rejected_mismatched_pairs, 1);
        assert_eq!(stats.requests, 0, "rejections are not admissions");
    }

    #[test]
    fn latency_percentiles_merge_classes_and_the_ooc_lane() {
        let inspector = Inspector::new();
        let c = ServiceCounters::register(&inspector);
        let u32_lat = inspector.histogram("service/class/u32/latency_ns");
        for _ in 0..90 {
            u32_lat.record(1_000);
        }
        for _ in 0..10 {
            c.note_ooc(10, 3, Duration::from_secs(2));
        }
        let stats = c.stats_snapshot();
        assert!(stats.latency_p50 <= Duration::from_micros(2));
        assert!(stats.latency_p99 >= Duration::from_secs(1));
        assert_eq!(stats.ooc_requests, 10);
        assert_eq!(stats.ooc_chunks, 30);
        assert_eq!(stats.elements, 100);
    }
}
