//! The service front end and its worker loop.

use crate::batch::{elem_bytes, oversize_request_error, ClassQueue, Pending, ServiceKey};
use crate::config::{OverBudgetPolicy, ServiceConfig};
use crate::counters::ServiceCounters;
use crate::ooc_lane::OocLaneWorker;
use crate::request::{
    FlushReason, KeyClass, SortOutcome, SortPayload, SortRequest, SortTicket, SubmitError,
    TicketError,
};
use hrs_core::Executor;
use multi_gpu::{DevicePool, ShardedSorter};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::Inspector;

/// Request ids cancelled via [`SortTicket::cancel`], shared between the
/// front end, the tickets, both class queues and the out-of-core lane.
pub(crate) type CancelSet = Arc<Mutex<HashSet<u64>>>;

/// What travels over the batching worker's channel.
pub(crate) enum WorkerMsg {
    /// A freshly admitted request.
    Submit(Submission),
    /// A cancellation for a previously submitted request (sent by
    /// [`SortTicket::cancel`]; the id is also in the [`CancelSet`]).
    Cancel(u64),
    /// Drain everything and exit.  Shutdown is an explicit message rather
    /// than a channel disconnect because tickets hold sender clones (for
    /// [`SortTicket::cancel`]): an outstanding ticket would otherwise keep
    /// the channel alive and deadlock the shutdown join.
    Shutdown,
}

/// Lifetime counters of a service.
///
/// Every field is backed by a shared atomic on the service's
/// [`Inspector`], so [`SortService::stats_snapshot`] returns a *live* read
/// at any moment — requests in flight included — and
/// [`SortService::shutdown`] returns the final state of the same counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests admitted (counted at submission; shutdown drains and
    /// resolves every one of them).
    pub requests: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Largest number of requests coalesced into one batch.
    pub max_batch_requests: usize,
    /// Total keys sorted.
    pub elements: u64,
    /// Batches flushed because the size threshold was reached.
    pub flushed_by_bytes: u64,
    /// Batches flushed because the oldest request hit `max_linger`.
    pub flushed_by_linger: u64,
    /// Batches flushed because the request-count cap was reached.
    pub flushed_by_cap: u64,
    /// Batches flushed by the shutdown drain.
    pub flushed_by_drain: u64,
    /// Over-budget requests sorted through the out-of-core lane (also
    /// counted in `requests` and `elements`).
    pub ooc_requests: u64,
    /// Pipeline chunks streamed across all out-of-core requests.
    pub ooc_chunks: u64,
    /// Submissions bounced by backpressure
    /// ([`SubmitError::Saturated`]).
    pub rejected_saturated: u64,
    /// Over-budget submissions bounced under
    /// [`OverBudgetPolicy::Reject`] ([`SubmitError::TooLarge`]).
    pub rejected_too_large: u64,
    /// Submissions bounced by the demux-tag key limit
    /// ([`SubmitError::TooManyKeys`]).
    pub rejected_too_many_keys: u64,
    /// Malformed pair submissions bounced
    /// ([`SubmitError::MismatchedPair`]).
    pub rejected_mismatched_pairs: u64,
    /// Submissions shed because more than half the pool was dead
    /// ([`SubmitError::Degraded`]).
    pub rejected_degraded: u64,
    /// Admitted requests unpicked by [`SortTicket::cancel`] before their
    /// batch dispatched.
    pub cancelled: u64,
    /// Admitted requests whose dispatch deadline expired before their
    /// batch dispatched ([`TicketError::DeadlineExceeded`]).
    pub deadline_exceeded: u64,
    /// Worker panics caught and isolated (the affected requests resolved
    /// with [`TicketError::WorkerFailed`]; the service kept running).
    pub worker_failures: u64,
    /// Batches the sharded engine could not complete even after fault
    /// recovery ([`TicketError::SortFailed`]).
    pub sort_failures: u64,
    /// Batches flushed early because a pending request's deadline
    /// approached ([`FlushReason::Deadline`]).
    pub flushed_by_deadline: u64,
    /// Device failures the sharded engine survived while serving this
    /// service's batches (from the `multi_gpu/faults` telemetry subtree).
    pub device_failures: u64,
    /// Elements fault recovery requeued onto surviving devices.
    pub requeued_elements: u64,
    /// Median engine fault-recovery latency (zero when no fault occurred).
    pub recovery_p50: Duration,
    /// 99th-percentile engine fault-recovery latency.
    pub recovery_p99: Duration,
    /// Median submit→outcome latency across every resolved request (both
    /// key classes and the out-of-core lane).
    pub latency_p50: Duration,
    /// 99th-percentile submit→outcome latency.
    pub latency_p99: Duration,
}

impl ServiceStats {
    /// Mean requests per batch (1.0 when nothing coalesced).  Out-of-core
    /// requests never ride a batch, so they are excluded from the ratio.
    pub fn mean_batch_requests(&self) -> f64 {
        let batched = self.requests.saturating_sub(self.ooc_requests);
        if self.batches == 0 {
            1.0
        } else {
            batched as f64 / self.batches as f64
        }
    }
}

/// A request as it travels from [`SortService::submit`] to a worker (the
/// batching worker or the out-of-core lane).
pub(crate) struct Submission {
    pub(crate) id: u64,
    pub(crate) payload: SortPayload,
    pub(crate) deadline: Option<Duration>,
    pub(crate) tx: mpsc::Sender<Result<SortOutcome, TicketError>>,
    pub(crate) submitted: Instant,
}

/// The async batch sort service (see the [crate docs](crate) for the full
/// architecture).  Submissions are non-blocking; sorting happens on a
/// dedicated worker thread that owns the device pool.
#[derive(Debug)]
pub struct SortService {
    tx: Option<mpsc::Sender<WorkerMsg>>,
    worker: Option<JoinHandle<()>>,
    /// Channel and worker of the out-of-core lane; `None` under
    /// [`OverBudgetPolicy::Reject`].
    ooc_tx: Option<mpsc::Sender<Submission>>,
    ooc_worker: Option<JoinHandle<()>>,
    /// The sorter's observability hub: one snapshot covers the service
    /// counters plus the sharded-engine and per-device core metrics below.
    inspector: Inspector,
    /// Shared handles to the live `service/...` counters.
    counters: Arc<ServiceCounters>,
    /// A clone of the sorter's pool: device health is shared through it
    /// (an `Arc` inside), so the front end sees deaths the engine marks
    /// mid-sort and can gate degraded-mode admission live.
    pool: DevicePool,
    /// Ids cancelled via [`SortTicket::cancel`], shared with every ticket
    /// and both workers.
    cancels: CancelSet,
    in_flight: Arc<AtomicUsize>,
    next_id: AtomicU64,
    queue_depth: usize,
    admission_budget: u64,
    budget_slack: f64,
    /// Whether the pool can sort anything at all (a positive raw budget).
    /// A zero-budget pool — e.g. every device has a non-positive capacity
    /// weight — must reject over-budget requests even under the
    /// out-of-core policy: the lane shards by capacity weight too, so
    /// there is no device that could take a chunk.
    pool_can_sort: bool,
    over_budget: OverBudgetPolicy,
}

impl SortService {
    /// Starts a service over `sorter`'s device pool.
    ///
    /// The admission budget is resolved here:
    /// `pool.batch_budget_bytes() × cfg.budget_slack` bounds both a single
    /// request and the size threshold a batch flushes at, so no formed
    /// batch can exceed what the devices' memory planners allow.  Under
    /// [`OverBudgetPolicy::OutOfCore`] a second worker thread (the
    /// out-of-core lane, with its own sorter clone) admits requests
    /// *above* the budget and streams them through the chunked pipeline.
    pub fn start(sorter: ShardedSorter, cfg: ServiceConfig) -> Self {
        let pool = sorter.pool().clone();
        let pool_budget = pool.batch_budget_bytes();
        let budget_slack = cfg.budget_slack;
        let admission_budget = (pool_budget as f64 * budget_slack).max(1.0) as u64;
        let pool_can_sort = pool_budget > 0;
        let queue_depth = cfg.queue_depth;
        let over_budget = cfg.over_budget;
        let in_flight = Arc::new(AtomicUsize::new(0));
        let cancels: CancelSet = Arc::new(Mutex::new(HashSet::new()));
        // Both lanes, the class queues and this front end all register on
        // the sorter's inspector — idempotently, so every holder updates
        // the same atomic cells and `stats_snapshot` is live.
        let inspector = sorter.inspector().clone();
        let counters = ServiceCounters::register(&inspector);
        // Batch ids stay unique across both lanes: they draw from one
        // shared counter.
        let next_batch = Arc::new(AtomicU64::new(0));

        let (ooc_tx, ooc_worker) = if over_budget == OverBudgetPolicy::OutOfCore {
            let (tx, rx) = mpsc::channel::<Submission>();
            let lane = OocLaneWorker::new(
                sorter.clone(),
                Arc::clone(&in_flight),
                Arc::clone(&next_batch),
                Arc::clone(&cancels),
            );
            let handle = std::thread::Builder::new()
                .name("sort-service-ooc".into())
                .spawn(move || lane.run(rx))
                .expect("spawning the out-of-core lane worker");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };

        let (tx, rx) = mpsc::channel();
        let worker_inflight = Arc::clone(&in_flight);
        let worker_cancels = Arc::clone(&cancels);
        let worker = std::thread::Builder::new()
            .name("sort-service".into())
            .spawn(move || {
                Worker::new(
                    sorter,
                    cfg,
                    admission_budget,
                    worker_inflight,
                    next_batch,
                    worker_cancels,
                )
                .run(rx)
            })
            .expect("spawning the sort-service worker");
        SortService {
            tx: Some(tx),
            worker: Some(worker),
            ooc_tx,
            ooc_worker,
            inspector,
            counters,
            pool,
            cancels,
            in_flight,
            next_id: AtomicU64::new(0),
            queue_depth,
            admission_budget,
            budget_slack,
            pool_can_sort,
            over_budget,
        }
    }

    /// The resolved admission budget in batch bytes (pool budget × slack).
    ///
    /// Live: when devices have died, the budget is recomputed over the
    /// surviving devices' memory planners, so admission control reflects
    /// what the degraded pool can actually hold.
    pub fn admission_budget(&self) -> u64 {
        if self.pool.any_dead() {
            (self.pool.batch_budget_bytes() as f64 * self.budget_slack).max(1.0) as u64
        } else {
            self.admission_budget
        }
    }

    /// Requests currently admitted and not yet resolved.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// A live snapshot of the service's lifetime counters — callable at
    /// any moment, including while requests are in flight.  The counters
    /// are shared atomics updated by the workers as they go, so this
    /// involves no channel round trip and no locks on the sorting path.
    pub fn stats_snapshot(&self) -> ServiceStats {
        self.counters.stats_snapshot()
    }

    /// The observability hub shared with the underlying sorter:
    /// [`Inspector::snapshot`] walks the service counters *and* the
    /// sharded-engine, out-of-core and per-device core metrics into one
    /// JSON-serialisable tree.
    pub fn inspector(&self) -> &Inspector {
        &self.inspector
    }

    /// Counts a rejection before handing the error back.
    fn reject(&self, err: SubmitError) -> SubmitError {
        self.counters.note_rejected(&err);
        err
    }

    /// Submits a sort request.  Non-blocking: returns a [`SortTicket`]
    /// immediately, or a [`SubmitError`] when admission control rejects the
    /// request (saturation, size, malformed pairs, degraded pool,
    /// shutdown).
    ///
    /// Takes anything convertible into a [`SortRequest`]: a bare
    /// [`SortPayload`] submits with no deadline; attach one with
    /// [`SortPayload::with_deadline`].
    ///
    /// A request above the admission budget is routed by the configured
    /// [`OverBudgetPolicy`]: rejected as [`SubmitError::TooLarge`], or
    /// admitted into the dedicated out-of-core lane (bypassing batching;
    /// its outcome reports [`FlushReason::OutOfCore`] and carries the
    /// per-chunk spans in the shared report).
    pub fn submit(&self, request: impl Into<SortRequest>) -> Result<SortTicket, SubmitError> {
        let SortRequest { payload, deadline } = request.into();
        // Exhaustive on purpose: a new payload variant must decide here
        // whether it carries values (and how their length is validated)
        // before it can be admitted at all.
        let (keys_len, values_len) = match &payload {
            SortPayload::U32Keys(keys) => (keys.len(), keys.len()),
            SortPayload::U64Keys(keys) => (keys.len(), keys.len()),
            SortPayload::U32Pairs { keys, values } => (keys.len(), values.len()),
            SortPayload::U64Pairs { keys, values } => (keys.len(), values.len()),
        };
        if keys_len != values_len {
            return Err(self.reject(SubmitError::MismatchedPair {
                keys: keys_len,
                values: values_len,
            }));
        }
        // Graceful degradation: with more than half the pool dead, shed
        // new load outright instead of queueing work the survivors cannot
        // absorb.  In-flight requests still resolve through recovery.
        if self.pool.is_degraded() {
            return Err(self.reject(SubmitError::Degraded {
                alive: self.pool.alive_count(),
                total: self.pool.len(),
            }));
        }
        let bytes = payload.batch_bytes();
        let budget = self.admission_budget();
        let over_budget_lane = bytes > budget;
        if over_budget_lane {
            // A pool that can sort nothing (zero raw budget — e.g. every
            // device has a non-positive capacity weight) rejects under
            // *both* policies: the out-of-core lane shards by the same
            // capacity weights, so it could not run the request either.
            if self.over_budget == OverBudgetPolicy::Reject || !self.pool_can_sort {
                return Err(self.reject(SubmitError::TooLarge { bytes, budget }));
            }
            // Over-budget lane: no batching, no demux tags, so the
            // slot-tag key limit does not apply.
            if self.ooc_tx.is_none() {
                return Err(SubmitError::ShuttingDown);
            }
        } else {
            // Batched requests must fit the demux-tag index space —
            // enforced here as a hard error, where it used to be a
            // release-invisible debug assert deep in the class queue.
            if let Some(err) = oversize_request_error(keys_len) {
                return Err(self.reject(err));
            }
            if self.tx.is_none() {
                return Err(SubmitError::ShuttingDown);
            }
        }
        // Reserve an in-flight slot; the worker releases it once the
        // request's batch completed.
        let depth = self.queue_depth;
        if self
            .in_flight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < depth).then_some(n + 1)
            })
            .is_err()
        {
            return Err(self.reject(SubmitError::Saturated {
                in_flight: depth,
                queue_depth: depth,
            }));
        }
        // RELAXED: ticket ids only need uniqueness, which the RMW
        // guarantees; nothing is published through this cell.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (otx, orx) = mpsc::channel();
        let submission = Submission {
            id,
            payload,
            deadline,
            tx: otx,
            submitted: Instant::now(),
        };
        // Count the admission *before* the send: a snapshot that sees a
        // batch therefore always sees its requests too (`requests ≥
        // batches` holds at every instant).
        self.counters.note_admitted();
        let sent = if over_budget_lane {
            self.ooc_tx
                .as_ref()
                .is_some_and(|tx| tx.send(submission).is_ok())
        } else {
            // The batching lane wraps submissions in worker messages so
            // cancellations ride the same ordered channel.
            self.tx
                .as_ref()
                .is_some_and(|tx| tx.send(WorkerMsg::Submit(submission)).is_ok())
        };
        if !sent {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err(SubmitError::ShuttingDown);
        }
        Ok(SortTicket {
            id,
            rx: orx,
            cancel_tx: (!over_budget_lane).then(|| self.tx.as_ref().unwrap().clone()),
            cancel_set: Some(Arc::clone(&self.cancels)),
        })
    }

    /// Shuts the service down: stops admitting, drains and resolves every
    /// pending request, joins the workers and returns the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_in_place();
        self.counters.stats_snapshot()
    }

    fn shutdown_in_place(&mut self) {
        // Tell the batching worker explicitly: tickets hold clones of this
        // sender, so dropping our end does not disconnect the channel.
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        // The out-of-core lane's channel has no other senders, so the drop
        // alone disconnects it.
        drop(self.ooc_tx.take());
        // The workers isolate panics internally (pending requests resolve
        // with `TicketError::WorkerFailed` and the loop continues), so a
        // join error here means a panic escaped the isolation — count it
        // rather than propagate: shutdown must stay deterministic.
        if let Some(w) = self.worker.take() {
            if w.join().is_err() {
                self.counters.note_worker_failure();
            }
        }
        if let Some(ooc) = self.ooc_worker.take() {
            if ooc.join().is_err() {
                self.counters.note_worker_failure();
            }
        }
    }
}

impl Drop for SortService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// The worker-side state: one class queue per key class, each with its own
/// sorter clone (and therefore its own warm device lanes).
struct Worker {
    q32: ClassQueue<u32>,
    q64: ClassQueue<u64>,
    cfg: ServiceConfig,
    max_batch_bytes: u64,
    /// Shared with the out-of-core lane so batch ids stay unique
    /// service-wide.
    next_batch: Arc<AtomicU64>,
    /// Set once shutdown was requested; if a panic escapes the drain
    /// flush, the loop must still exit instead of spinning on a channel
    /// that outstanding tickets keep alive.
    draining: bool,
}

impl Worker {
    fn new(
        sorter: ShardedSorter,
        cfg: ServiceConfig,
        admission_budget: u64,
        in_flight: Arc<AtomicUsize>,
        next_batch: Arc<AtomicU64>,
        cancels: CancelSet,
    ) -> Self {
        // The size threshold is capped by the admission budget, and
        // `admit` flushes a class *before* an addition would cross the
        // threshold, so a formed batch never exceeds `max_batch_bytes` —
        // and therefore never exceeds the pool's planner budget, at any
        // slack setting.
        let max_batch_bytes = cfg.max_batch_bytes.min(admission_budget);
        Worker {
            q32: ClassQueue::new(sorter.clone(), Arc::clone(&in_flight), Arc::clone(&cancels)),
            q64: ClassQueue::new(sorter, in_flight, cancels),
            cfg,
            max_batch_bytes,
            next_batch,
            draining: false,
        }
    }

    fn next_batch_id(&self) -> u64 {
        // RELAXED: batch ids only need uniqueness across lanes, which the
        // RMW guarantees; nothing else is published through this cell.
        self.next_batch.fetch_add(1, Ordering::Relaxed)
    }

    /// The worker loop, panic-isolated: a panic that escapes one pass
    /// (e.g. from deep inside a flush) fails the pending requests with
    /// [`TicketError::WorkerFailed`] and the loop keeps serving — the
    /// service never hangs a ticket and never needs a restart.
    fn run(mut self, rx: mpsc::Receiver<WorkerMsg>) {
        loop {
            match catch_unwind(AssertUnwindSafe(|| self.step(&rx))) {
                Ok(true) => {}
                Ok(false) => return,
                Err(_) => {
                    self.q32.note_worker_panic();
                    self.q32.fail_pending(TicketError::WorkerFailed);
                    self.q64.fail_pending(TicketError::WorkerFailed);
                    if self.draining {
                        return;
                    }
                }
            }
        }
    }

    /// One pass of the loop; `false` means shutdown was requested (or the
    /// channel disconnected) and the drain flush ran.
    fn step(&mut self, rx: &mpsc::Receiver<WorkerMsg>) -> bool {
        match rx.recv_timeout(self.next_deadline()) {
            Ok(msg) => {
                if !self.handle(msg) {
                    return self.drain();
                }
                // Greedily drain whatever else already arrived (e.g.
                // the backlog built up behind a long flush).  The size
                // and request-cap triggers fire between admissions —
                // they bound individual batches — but the linger
                // *deadline* is checked once at the end of the burst,
                // so a stale backlog coalesces into one batch instead
                // of flushing as singletons.
                self.flush_ready(false);
                while let Ok(msg) = rx.try_recv() {
                    if !self.handle(msg) {
                        return self.drain();
                    }
                    self.flush_ready(false);
                }
                self.flush_ready(true);
                true
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.flush_ready(true);
                true
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => self.drain(),
        }
    }

    /// Runs the shutdown drain; always returns `false` (exit the loop).
    fn drain(&mut self) -> bool {
        self.draining = true;
        self.flush_all(FlushReason::Drain);
        false
    }

    /// Processes one message; `false` means shutdown was requested.
    fn handle(&mut self, msg: WorkerMsg) -> bool {
        match msg {
            WorkerMsg::Submit(sub) => self.admit(sub),
            WorkerMsg::Cancel(id) => {
                // The id lives in exactly one class queue (or already
                // flushed, in which case the cancel is a no-op and the
                // set entry is pruned by the queues' sweeps).
                let _ = self.q32.cancel(id) || self.q64.cancel(id);
            }
            WorkerMsg::Shutdown => return false,
        }
        true
    }

    /// Admits a request into its class queue, flushing the class first
    /// when the addition would push its pending bytes past the size
    /// threshold.  Flush-before-admit keeps the invariant exact for every
    /// slack setting: a formed batch's bytes never exceed
    /// `max_batch_bytes` (a single request is capped at the admission
    /// budget, which also caps `max_batch_bytes`).
    fn admit(&mut self, sub: Submission) {
        match sub.payload.class() {
            KeyClass::U32 => {
                let (keys, values) = <u32 as ServiceKey>::split(sub.payload);
                let incoming = keys.len() as u64 * elem_bytes::<u32>();
                if !self.q32.is_empty()
                    && self.q32.pending_bytes() + incoming > self.max_batch_bytes
                {
                    let id = self.next_batch_id();
                    self.q32.flush(FlushReason::Bytes, id);
                }
                self.q32.push(Pending {
                    id: sub.id,
                    keys,
                    values,
                    tx: sub.tx,
                    submitted: sub.submitted,
                    deadline: sub.deadline,
                });
            }
            KeyClass::U64 => {
                let (keys, values) = <u64 as ServiceKey>::split(sub.payload);
                let incoming = keys.len() as u64 * elem_bytes::<u64>();
                if !self.q64.is_empty()
                    && self.q64.pending_bytes() + incoming > self.max_batch_bytes
                {
                    let id = self.next_batch_id();
                    self.q64.flush(FlushReason::Bytes, id);
                }
                self.q64.push(Pending {
                    id: sub.id,
                    keys,
                    values,
                    tx: sub.tx,
                    submitted: sub.submitted,
                    deadline: sub.deadline,
                });
            }
        }
    }

    /// How long the worker may sleep before some class's linger expires or
    /// a pending request's dispatch deadline approaches (the wake point is
    /// 80 % of the deadline, leaving headroom to dispatch before it
    /// expires).
    fn next_deadline(&self) -> Duration {
        let now = Instant::now();
        let linger = self.cfg.max_linger;
        let lingers = [self.q32.oldest(), self.q64.oldest()]
            .into_iter()
            .flatten()
            .map(|oldest| oldest + linger);
        let deadlines = [self.q32.deadline_wake(), self.q64.deadline_wake()]
            .into_iter()
            .flatten();
        lingers
            .chain(deadlines)
            .map(|at| at.saturating_duration_since(now))
            .min()
            .unwrap_or(Duration::from_secs(60))
    }

    /// Decides per class whether a flush is due and runs all due flushes —
    /// concurrently through the flush executor when more than one class is
    /// ready.  With `check_linger`, the deadline trigger is evaluated too;
    /// it runs at the end of every loop pass (not only after a receive
    /// timeout: under sustained arrivals the channel is never empty, and
    /// the deadline must still hold).
    fn flush_ready(&mut self, check_linger: bool) {
        let now = Instant::now();
        let linger = self.cfg.max_linger;
        let cap = self.cfg.max_batch_requests;
        let max_bytes = self.max_batch_bytes;
        let due = |len: usize,
                   bytes: u64,
                   oldest: Option<Instant>,
                   deadline_wake: Option<Instant>|
         -> Option<FlushReason> {
            if len == 0 {
                return None;
            }
            if bytes >= max_bytes {
                Some(FlushReason::Bytes)
            } else if len >= cap {
                Some(FlushReason::RequestCap)
            } else if deadline_wake.is_some_and(|at| now >= at) {
                // A request's dispatch deadline approaches: flush now so
                // the batch dispatches before the deadline expires.
                // Checked on every pass, like bytes/cap — a deadline is a
                // per-request promise, not a batching heuristic.
                Some(FlushReason::Deadline)
            } else if check_linger
                && oldest.is_some_and(|o| now.saturating_duration_since(o) >= linger)
            {
                Some(FlushReason::Linger)
            } else {
                None
            }
        };
        let r32 = due(
            self.q32.len(),
            self.q32.pending_bytes(),
            self.q32.oldest(),
            self.q32.deadline_wake(),
        );
        let r64 = due(
            self.q64.len(),
            self.q64.pending_bytes(),
            self.q64.oldest(),
            self.q64.deadline_wake(),
        );
        self.flush_classes(r32, r64);
    }

    fn flush_all(&mut self, reason: FlushReason) {
        let r32 = (!self.q32.is_empty()).then_some(reason);
        let r64 = (!self.q64.is_empty()).then_some(reason);
        self.flush_classes(r32, r64);
    }

    /// Runs the requested class flushes.  Two ready classes flush
    /// concurrently on the flush executor (each owns its sorter clone, so
    /// both keep warm lanes); batch ids stay monotonic.  In-flight slots
    /// are released per request inside the flushes, and the flush/batch
    /// counters are recorded by the class queues themselves.
    fn flush_classes(&mut self, r32: Option<FlushReason>, r64: Option<FlushReason>) {
        let id32 = r32.map(|_| self.next_batch_id());
        let id64 = r64.map(|_| self.next_batch_id());
        match (r32, r64) {
            (None, None) => {}
            (Some(re), None) => {
                self.q32.flush(re, id32.unwrap());
            }
            (None, Some(re)) => {
                self.q64.flush(re, id64.unwrap());
            }
            (Some(re32), Some(re64)) => {
                type Job<'a> = Box<dyn FnOnce() + Send + 'a>;
                let exec: Executor = self.cfg.flush_executor;
                let (q32, q64) = (&mut self.q32, &mut self.q64);
                let (b32, b64) = (id32.unwrap(), id64.unwrap());
                let slots: [Mutex<Option<Job>>; 2] = [
                    Mutex::new(Some(Box::new(move || {
                        q32.flush(re32, b32);
                    }))),
                    Mutex::new(Some(Box::new(move || {
                        q64.flush(re64, b64);
                    }))),
                ];
                exec.for_each_task(2, |t, _| {
                    if let Some(job) = slots[t].lock().unwrap().take() {
                        job();
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multi_gpu::{DevicePool, SimDevice};
    use workloads::uniform_keys;

    fn small_service(cfg: ServiceConfig) -> SortService {
        SortService::start(ShardedSorter::new(DevicePool::titan_cluster(2)), cfg)
    }

    /// A pool whose devices hold only `memory` bytes each, so modest test
    /// inputs overflow the admission budget.
    fn tiny_memory_pool(p: usize, memory: u64) -> DevicePool {
        let mut spec = gpu_sim::DeviceSpec::titan_x_pascal();
        spec.device_memory_bytes = memory;
        DevicePool::homogeneous(p, SimDevice::on_pcie3(spec))
    }

    fn tiny_memory_service(cfg: ServiceConfig) -> SortService {
        SortService::start(ShardedSorter::new(tiny_memory_pool(2, 1 << 20)), cfg)
    }

    #[test]
    fn single_request_round_trips() {
        let service = small_service(ServiceConfig::default());
        let keys = uniform_keys::<u64>(20_000, 1);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let ticket = service.submit(SortPayload::U64Keys(keys)).unwrap();
        let outcome = ticket.wait().unwrap();
        assert_eq!(outcome.payload, SortPayload::U64Keys(expect));
        assert_eq!(outcome.span.len, 20_000);
        assert_eq!(outcome.report.requests.len(), outcome.batch.requests);
        let stats = service.shutdown();
        assert_eq!(stats.requests, 1);
        assert!(stats.batches >= 1);
    }

    #[test]
    fn linger_coalesces_requests_into_one_batch() {
        // Large byte threshold + generous linger: the two quick submissions
        // must ride the same batch.
        let service = small_service(
            ServiceConfig::default()
                .with_max_linger(Duration::from_millis(200))
                .with_max_batch_bytes(u64::MAX),
        );
        let t1 = service
            .submit(SortPayload::U32Keys(uniform_keys::<u32>(5_000, 1)))
            .unwrap();
        let t2 = service
            .submit(SortPayload::U32Keys(uniform_keys::<u32>(5_000, 2)))
            .unwrap();
        let (o1, o2) = (t1.wait().unwrap(), t2.wait().unwrap());
        assert_eq!(o1.batch.batch, o2.batch.batch, "expected one batch");
        assert_eq!(o1.batch.requests, 2);
        assert!(o1.queued >= Duration::ZERO);
        let stats = service.shutdown();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.mean_batch_requests(), 2.0);
    }

    #[test]
    fn linger_deadline_holds_under_sustained_arrivals() {
        // Regression: the linger check used to run only after a receive
        // *timeout*, so a steady arrival stream (channel never empty at the
        // deadline) starved the deadline-based flush until the bytes or
        // request-cap threshold fired.  With arrivals every ~3 ms and a
        // 10 ms linger, several linger flushes must happen mid-stream.
        let service = small_service(
            ServiceConfig::default()
                .with_max_linger(Duration::from_millis(10))
                .with_max_batch_bytes(u64::MAX)
                .with_queue_depth(64),
        );
        let tickets: Vec<SortTicket> = (0..20)
            .map(|s| {
                std::thread::sleep(Duration::from_millis(3));
                service
                    .submit(SortPayload::U32Keys(uniform_keys::<u32>(500, s)))
                    .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = service.shutdown();
        assert!(
            stats.flushed_by_linger >= 2,
            "linger never fired mid-stream: {stats:?}"
        );
        assert!(
            stats.batches > 1,
            "everything rode one batch despite a 10 ms linger over ~60 ms of arrivals"
        );
    }

    #[test]
    fn oversized_batches_are_split_before_admission() {
        // A tiny byte threshold: three 1000-key u64 requests (16 KB each in
        // batch bytes) against a 20 KB threshold must form three singleton
        // batches — admit flushes *before* the addition would cross the
        // threshold, so no formed batch exceeds it.
        let service = small_service(
            ServiceConfig::default()
                .with_max_linger(Duration::from_secs(30))
                .with_max_batch_bytes(20 * 1024)
                .with_queue_depth(8),
        );
        let tickets: Vec<SortTicket> = (0..3)
            .map(|s| {
                service
                    .submit(SortPayload::U64Keys(uniform_keys::<u64>(1_000, s)))
                    .unwrap()
            })
            .collect();
        // The last request only flushes at the shutdown drain (its bytes
        // alone stay under the threshold), so resolve after shutdown.
        service.shutdown();
        let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        for o in &outcomes {
            assert!(
                o.batch.bytes <= 20 * 1024,
                "batch of {} bytes exceeded the threshold",
                o.batch.bytes
            );
        }
        let ids: std::collections::HashSet<u64> = outcomes.iter().map(|o| o.batch.batch).collect();
        assert_eq!(ids.len(), 3, "requests must not have shared a batch");
    }

    #[test]
    fn saturation_is_reported_and_recovers() {
        // Long linger + huge thresholds: admitted requests stay in flight
        // until the drain, so the fifth submission must bounce.
        let service = small_service(
            ServiceConfig::default()
                .with_queue_depth(4)
                .with_max_linger(Duration::from_secs(30))
                .with_max_batch_bytes(u64::MAX),
        );
        let tickets: Vec<SortTicket> = (0..4)
            .map(|s| {
                service
                    .submit(SortPayload::U64Keys(uniform_keys::<u64>(1_000, s)))
                    .unwrap()
            })
            .collect();
        assert_eq!(service.in_flight(), 4);
        let err = service
            .submit(SortPayload::U64Keys(uniform_keys::<u64>(1_000, 9)))
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::Saturated {
                in_flight: 4,
                queue_depth: 4
            }
        );
        // Shutdown drains: every admitted ticket still resolves, sorted.
        let stats = service.shutdown();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.flushed_by_drain, 1);
        for t in tickets {
            let o = t.wait().unwrap();
            let SortPayload::U64Keys(keys) = o.payload else {
                panic!("wrong variant")
            };
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(o.batch.reason, FlushReason::Drain);
        }
    }

    #[test]
    fn oversized_and_malformed_requests_bounce() {
        let service = small_service(ServiceConfig::default());
        let budget = service.admission_budget();
        assert!(budget > 0);
        let err = service
            .submit(SortPayload::U32Pairs {
                keys: vec![1, 2],
                values: vec![7],
            })
            .unwrap_err();
        assert_eq!(err, SubmitError::MismatchedPair { keys: 2, values: 1 });
        // A Titan X budget is gigabytes, so instead of allocating an
        // actually-oversized input, shrink the budget via the slack knob.
        drop(service);
        let tiny = SortService::start(
            ShardedSorter::new(DevicePool::titan_cluster(2)),
            ServiceConfig::default().with_budget_slack(f64::MIN_POSITIVE),
        );
        let err = tiny
            .submit(SortPayload::U64Keys(uniform_keys::<u64>(10_000, 1)))
            .unwrap_err();
        assert!(matches!(err, SubmitError::TooLarge { .. }));
    }

    #[test]
    fn over_budget_request_rides_the_out_of_core_lane() {
        let service = tiny_memory_service(
            ServiceConfig::default().with_over_budget(OverBudgetPolicy::OutOfCore),
        );
        let budget = service.admission_budget();
        let n = 200_000usize;
        let keys = uniform_keys::<u64>(n, 31);
        let payload = SortPayload::U64Keys(keys.clone());
        assert!(
            payload.batch_bytes() > budget,
            "test input must exceed the {budget}-byte budget"
        );
        let ticket = service.submit(payload).expect("out-of-core admission");
        let outcome = ticket.wait().unwrap();
        let SortPayload::U64Keys(sorted) = outcome.payload else {
            panic!("wrong variant")
        };
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        assert_eq!(outcome.batch.reason, FlushReason::OutOfCore);
        assert_eq!(outcome.batch.requests, 1);
        assert_eq!(outcome.span.len, n as u64);
        assert!(outcome.report.is_out_of_core());
        assert!(
            outcome.report.ooc_chunks.len() > 2,
            "expected real chunking, got {} chunks",
            outcome.report.ooc_chunks.len()
        );
        let stats = service.shutdown();
        assert_eq!(stats.ooc_requests, 1);
        assert_eq!(stats.requests, 1);
        assert!(stats.ooc_chunks > 2);
        assert_eq!(stats.elements, n as u64);
    }

    #[test]
    fn ooc_lane_and_batching_lane_coexist() {
        // A small request batches as usual while a big one streams through
        // the out-of-core lane; batch ids never collide.
        let service = tiny_memory_service(
            ServiceConfig::default()
                .with_over_budget(OverBudgetPolicy::OutOfCore)
                .with_max_linger(Duration::from_millis(1)),
        );
        let big = service
            .submit(SortPayload::U64Pairs {
                keys: uniform_keys::<u64>(150_000, 41),
                values: (0..150_000u32).collect(),
            })
            .expect("over-budget pairs admission");
        let small = service
            .submit(SortPayload::U32Keys(uniform_keys::<u32>(2_000, 42)))
            .expect("small admission");
        let ob = big.wait().unwrap();
        let os = small.wait().unwrap();
        assert_eq!(ob.batch.reason, FlushReason::OutOfCore);
        assert_ne!(os.batch.reason, FlushReason::OutOfCore);
        assert_ne!(ob.batch.batch, os.batch.batch);
        let SortPayload::U64Pairs { keys, values } = ob.payload else {
            panic!("wrong variant")
        };
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(values.len(), 150_000);
        let stats = service.shutdown();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.ooc_requests, 1);
        // The coalescing ratio counts only batched requests: one request
        // in one batch, the out-of-core request excluded.
        assert!(
            (stats.mean_batch_requests() - 1.0).abs() < 1e-9,
            "ooc requests skewed the batching ratio: {}",
            stats.mean_batch_requests()
        );
    }

    #[test]
    fn zero_weight_pool_rejects_even_under_the_ooc_policy() {
        // The out-of-core lane shards by the same capacity weights as the
        // in-core path, so a pool that can sort nothing must reject over-
        // budget requests instead of panicking the lane worker.
        let mut spec = gpu_sim::DeviceSpec::titan_x_pascal();
        spec.effective_bandwidth = gpu_sim::Bandwidth::from_gb_per_s(0.0);
        let pool = DevicePool::homogeneous(2, SimDevice::on_pcie3(spec));
        let service = SortService::start(
            ShardedSorter::new(pool),
            ServiceConfig::default().with_over_budget(OverBudgetPolicy::OutOfCore),
        );
        let err = service
            .submit(SortPayload::U64Keys(vec![3, 1, 2]))
            .unwrap_err();
        assert!(matches!(err, SubmitError::TooLarge { .. }), "got {err}");
        // Shutdown must not panic on a dead lane worker.
        let stats = service.shutdown();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.ooc_requests, 0);
    }

    #[test]
    fn reject_policy_still_bounces_over_budget_requests() {
        let service = tiny_memory_service(ServiceConfig::default());
        let err = service
            .submit(SortPayload::U64Keys(uniform_keys::<u64>(200_000, 5)))
            .unwrap_err();
        assert!(matches!(err, SubmitError::TooLarge { .. }));
        assert_eq!(service.stats_snapshot().rejected_too_large, 1);
        let stats = service.shutdown();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.ooc_requests, 0);
        assert_eq!(stats.rejected_too_large, 1);
    }

    #[test]
    fn ooc_lane_respects_saturation() {
        // in_flight accounting covers the out-of-core lane too.
        let service = tiny_memory_service(
            ServiceConfig::default()
                .with_over_budget(OverBudgetPolicy::OutOfCore)
                .with_queue_depth(1),
        );
        let t = service
            .submit(SortPayload::U64Keys(uniform_keys::<u64>(150_000, 6)))
            .unwrap();
        // The lane is busy and the single slot is taken: the next request
        // must bounce regardless of its size.
        let err = service
            .submit(SortPayload::U32Keys(vec![3, 1]))
            .unwrap_err();
        assert!(matches!(err, SubmitError::Saturated { .. }));
        t.wait().unwrap();
        service.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_error_out() {
        let mut service = small_service(ServiceConfig::default());
        service.shutdown_in_place();
        assert_eq!(
            service
                .submit(SortPayload::U32Keys(vec![3, 1]))
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
        // The out-of-core lane reports shutdown too (not TooLarge).
        let mut ooc = tiny_memory_service(
            ServiceConfig::default().with_over_budget(OverBudgetPolicy::OutOfCore),
        );
        ooc.shutdown_in_place();
        assert_eq!(
            ooc.submit(SortPayload::U64Keys(uniform_keys::<u64>(200_000, 1)))
                .unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn stats_snapshot_is_live_and_counts_rejections() {
        // Two admitted requests sit in the queue (nothing can trigger a
        // flush before the 30 s linger), yet the snapshot already sees
        // them — the old API could only report after `shutdown` destroyed
        // the service.
        let service = small_service(
            ServiceConfig::default()
                .with_queue_depth(2)
                .with_max_linger(Duration::from_secs(30))
                .with_max_batch_bytes(u64::MAX),
        );
        let t1 = service
            .submit(SortPayload::U64Keys(uniform_keys::<u64>(2_000, 1)))
            .unwrap();
        let t2 = service
            .submit(SortPayload::U64Keys(uniform_keys::<u64>(2_000, 2)))
            .unwrap();
        let live = service.stats_snapshot();
        assert_eq!(live.requests, 2);
        assert_eq!(live.batches, 0, "nothing may have flushed yet");
        assert_eq!(service.in_flight(), 2);

        // Rejections are counted by kind, live.
        let err = service
            .submit(SortPayload::U64Keys(vec![3, 1, 2]))
            .unwrap_err();
        assert!(matches!(err, SubmitError::Saturated { .. }));
        let _ = service
            .submit(SortPayload::U32Pairs {
                keys: vec![1, 2],
                values: vec![9],
            })
            .unwrap_err();
        let live = service.stats_snapshot();
        assert_eq!(live.rejected_saturated, 1);
        assert_eq!(live.rejected_mismatched_pairs, 1);

        let stats = service.shutdown();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.flushed_by_drain, 1);
        assert_eq!(stats.max_batch_requests, 2);
        assert!(stats.latency_p50 > Duration::ZERO);
        assert!(stats.latency_p99 >= stats.latency_p50);
        for t in [t1, t2] {
            t.wait().unwrap();
        }
    }

    #[test]
    fn inspector_snapshot_spans_every_layer() {
        let service = small_service(ServiceConfig::default());
        let t = service
            .submit(SortPayload::U64Keys(uniform_keys::<u64>(20_000, 3)))
            .unwrap();
        t.wait().unwrap();
        let snap = service.inspector().snapshot();
        let svc = snap.node("service").unwrap();
        assert_eq!(svc.uint("requests"), Some(1));
        assert!(svc.uint("batches").unwrap() >= 1);
        // The class subtree: queue drained back to zero, one latency sample.
        let class = snap.node("service/class/u64").unwrap();
        assert_eq!(class.uint("queue_depth"), Some(0));
        assert_eq!(
            snap.node("service/class/u64/latency_ns")
                .unwrap()
                .uint("count"),
            Some(1)
        );
        // The engine and per-device core layers hang off the same tree.
        assert!(snap.node("multi_gpu").unwrap().uint("sorts").unwrap() >= 1);
        assert!(snap.node("core/dev0").is_some());
        // And the whole thing round-trips through JSON.
        let parsed = crate::InspectNode::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        service.shutdown();
    }

    #[test]
    fn concurrent_class_flushes_resolve_both() {
        // One u32 and one u64 request pending at drain time → the worker
        // flushes both classes through the flush executor.
        let service = small_service(
            ServiceConfig::default()
                .with_max_linger(Duration::from_secs(30))
                .with_max_batch_bytes(u64::MAX),
        );
        let t32 = service
            .submit(SortPayload::U32Keys(uniform_keys::<u32>(4_000, 4)))
            .unwrap();
        let t64 = service
            .submit(SortPayload::U64Pairs {
                keys: uniform_keys::<u64>(4_000, 5),
                values: (0..4_000).collect(),
            })
            .unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.flushed_by_drain, 2);
        let o32 = t32.wait().unwrap();
        let o64 = t64.wait().unwrap();
        assert_ne!(o32.batch.batch, o64.batch.batch);
        let SortPayload::U64Pairs { keys, values } = o64.payload else {
            panic!("wrong variant")
        };
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(values.len(), 4_000);
    }
}
