//! Batch formation, execution and result demultiplexing.
//!
//! One [`ClassQueue`] exists per [`KeyClass`].  Requests
//! accumulate in submission order; a flush concatenates their keys into one
//! buffer, tags every key with its request slot (high half) and demux
//! payload (low half: the pair value, or the local index for key-only
//! requests), runs **one** sharded sort over the whole batch, and scatters
//! the globally sorted output back into each request's own buffers.
//!
//! The tag scheme is what makes demux allocation-free: after the sort, a
//! key's tag alone says which request it belongs to (`tag >> 32`) and, for
//! pair requests, what its permuted value is (`tag as u32`) — no
//! side-table lookups, no scratch buffers.  Each request's keys appear in
//! the globally sorted batch in ascending order, so writing them back
//! front-to-back reproduces exactly what sorting the request alone would
//! have produced.
//!
//! All assembly buffers (`batch_keys`, `batch_tags`, lens, cursors) and the
//! sorter's per-device lanes are reused across flushes: once the queue has
//! seen its largest batch, steady-state flushing performs no heap
//! allocation outside the outcome-channel sends.

use crate::counters::{ClassProbe, ServiceCounters};
use crate::request::{BatchInfo, FlushReason, KeyClass, SortOutcome, SortPayload, TicketError};
use crate::service::CancelSet;
use multi_gpu::ShardedSorter;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};
use workloads::keys::SortKey;

/// Keys the service can batch: bridges a concrete key type back to the
/// [`SortPayload`] variants that carry it.
pub trait ServiceKey: SortKey {
    /// The key class this type batches under (names the class's telemetry
    /// subtree, `service/class/<label>/`).
    const CLASS: KeyClass;
    /// Wraps sorted buffers back into the payload variant they came from.
    fn rebuild(keys: Vec<Self>, values: Option<Vec<u32>>) -> SortPayload;
    /// Unwraps a payload of this key class into its buffers.
    fn split(payload: SortPayload) -> (Vec<Self>, Option<Vec<u32>>);
}

impl ServiceKey for u32 {
    const CLASS: KeyClass = KeyClass::U32;

    fn rebuild(keys: Vec<Self>, values: Option<Vec<u32>>) -> SortPayload {
        match values {
            None => SortPayload::U32Keys(keys),
            Some(values) => SortPayload::U32Pairs { keys, values },
        }
    }

    fn split(payload: SortPayload) -> (Vec<Self>, Option<Vec<u32>>) {
        match payload {
            SortPayload::U32Keys(keys) => (keys, None),
            SortPayload::U32Pairs { keys, values } => (keys, Some(values)),
            other => unreachable!("u32 class queue got {other:?}"),
        }
    }
}

impl ServiceKey for u64 {
    const CLASS: KeyClass = KeyClass::U64;

    fn rebuild(keys: Vec<Self>, values: Option<Vec<u32>>) -> SortPayload {
        match values {
            None => SortPayload::U64Keys(keys),
            Some(values) => SortPayload::U64Pairs { keys, values },
        }
    }

    fn split(payload: SortPayload) -> (Vec<Self>, Option<Vec<u32>>) {
        match payload {
            SortPayload::U64Keys(keys) => (keys, None),
            SortPayload::U64Pairs { keys, values } => (keys, Some(values)),
            other => unreachable!("u64 class queue got {other:?}"),
        }
    }
}

/// One admitted request waiting for its batch.
pub struct Pending<K: ServiceKey> {
    /// Request id assigned at submission.
    pub id: u64,
    /// The request's keys (sorted in place by the flush).
    pub keys: Vec<K>,
    /// The request's values, for pair payloads (permuted in place).
    pub values: Option<Vec<u32>>,
    /// Where the outcome (or terminal error) goes.
    pub tx: mpsc::Sender<Result<SortOutcome, TicketError>>,
    /// When the request was admitted.
    pub submitted: Instant,
    /// Dispatch deadline relative to `submitted`, if the request set one.
    pub deadline: Option<Duration>,
}

/// What one flush did, for the worker's statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushSummary {
    /// Requests resolved by the flush.
    pub requests: usize,
    /// Total keys sorted.
    pub elements: u64,
    /// Total batch bytes (keys + tags).
    pub bytes: u64,
    /// What triggered the flush.
    pub reason: FlushReason,
}

/// The pending queue and reusable batch buffers of one key class.
pub struct ClassQueue<K: ServiceKey> {
    sorter: ShardedSorter,
    /// The service-wide in-flight counter; a request's slot is released
    /// *before* its outcome is sent, so a requester that just resolved a
    /// ticket can immediately submit again without a spurious
    /// [`SubmitError::Saturated`](crate::SubmitError::Saturated).
    in_flight: Arc<AtomicUsize>,
    /// Shared `service/...` counters (same atomic cells as every other
    /// holder registered on the sorter's inspector).
    counters: Arc<ServiceCounters>,
    /// This class's live gauges and latency histogram.
    probe: ClassProbe,
    /// Ids cancelled via `SortTicket::cancel`, shared service-wide.
    cancels: CancelSet,
    pending: Vec<Pending<K>>,
    pending_bytes: u64,
    batch_keys: Vec<K>,
    batch_tags: Vec<u64>,
    lens: Vec<usize>,
    cursors: Vec<usize>,
}

/// Bytes one element of class `K` contributes to a batch: the key plus its
/// `u64` demux tag.
pub fn elem_bytes<K: ServiceKey>() -> u64 {
    K::BYTES as u64 + 8
}

/// The largest batchable request in keys.  A batched key's demux tag packs
/// the request's local index (or pair value) into the low 32 tag bits, so a
/// request's indices must fit `u32` — a longer request would wrap and
/// silently corrupt the `(slot << 32) | index` tags of every other request
/// in the batch.  Enforced as a hard [`crate::SubmitError::TooManyKeys`]
/// at admission (it used to be a release-invisible `debug_assert!`).
pub const MAX_REQUEST_KEYS: usize = u32::MAX as usize;

/// The most requests one batch may hold: the slot half of the demux tag is
/// the high 32 bits, so slot ids must fit `u32`.
/// [`crate::ServiceConfig::with_max_batch_requests`] clamps to this.
pub const MAX_BATCH_SLOTS: usize = u32::MAX as usize;

/// The admission-side check behind [`MAX_REQUEST_KEYS`]: `Some(error)`
/// when a request of `keys` keys cannot be tagged safely.  Factored out so
/// the overflow arithmetic is testable without allocating a ≥ 2³²-element
/// payload.
pub fn oversize_request_error(keys: usize) -> Option<crate::SubmitError> {
    (keys > MAX_REQUEST_KEYS).then_some(crate::SubmitError::TooManyKeys {
        keys,
        max: MAX_REQUEST_KEYS,
    })
}

impl<K: ServiceKey> ClassQueue<K> {
    /// A queue flushing through (a clone of) the given sorter.  Each class
    /// gets its own clone so concurrent flushes of different classes both
    /// keep warm device lanes.
    pub fn new(sorter: ShardedSorter, in_flight: Arc<AtomicUsize>, cancels: CancelSet) -> Self {
        let counters = ServiceCounters::register(sorter.inspector());
        let probe = ClassProbe::register(sorter.inspector(), K::CLASS);
        ClassQueue {
            sorter,
            in_flight,
            counters,
            probe,
            cancels,
            pending: Vec::new(),
            pending_bytes: 0,
            batch_keys: Vec::new(),
            batch_tags: Vec::new(),
            lens: Vec::new(),
            cursors: Vec::new(),
        }
    }

    /// Admits a request into the pending batch.
    ///
    /// The tag-packing limits are enforced for real (not `debug_assert!`):
    /// admission control rejects violating requests before they reach the
    /// queue, so a failure here means a service-internal bug, and
    /// corrupting every other request's demux tags is not an acceptable
    /// release-build response to it.
    pub fn push(&mut self, req: Pending<K>) {
        assert!(
            req.keys.len() <= MAX_REQUEST_KEYS,
            "request of {} keys exceeds the demux-tag index space",
            req.keys.len()
        );
        assert!(
            self.pending.len() < MAX_BATCH_SLOTS,
            "batch already holds the maximum {MAX_BATCH_SLOTS} request slots"
        );
        self.pending_bytes += req.keys.len() as u64 * elem_bytes::<K>();
        self.pending.push(req);
        self.probe.queue_depth.set(self.pending.len() as u64);
        self.probe.pending_bytes.set(self.pending_bytes);
    }

    /// Pending request count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Pending payload in batch bytes.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Admission time of the oldest pending request.
    pub fn oldest(&self) -> Option<Instant> {
        self.pending.first().map(|p| p.submitted)
    }

    /// The earliest moment a pending request's dispatch deadline demands a
    /// flush: 80 % of the way from submission to the deadline, leaving
    /// headroom for the batch to dispatch before the deadline expires.
    pub fn deadline_wake(&self) -> Option<Instant> {
        self.pending
            .iter()
            .filter_map(|p| Some(p.submitted + p.deadline?.mul_f64(0.8)))
            .min()
    }

    /// Resolves one departing request with a terminal error: its bytes
    /// leave the queue accounting exactly, its admission slot is released,
    /// the failure is counted and its ticket resolves with `err`.
    fn resolve_err(&mut self, p: Pending<K>, err: TicketError) {
        self.pending_bytes -= p.keys.len() as u64 * elem_bytes::<K>();
        self.probe.queue_depth.set(self.pending.len() as u64);
        self.probe.pending_bytes.set(self.pending_bytes);
        self.cancels.lock().unwrap().remove(&p.id);
        self.counters.note_failed(&err);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        let _ = p.tx.send(Err(err));
    }

    /// Unpicks a pending request by id (called for
    /// `SortTicket::cancel`).  `true` when the request was found and
    /// cancelled; `false` when it is not in this queue (wrong class, or
    /// its batch already dispatched).
    pub fn cancel(&mut self, id: u64) -> bool {
        let Some(idx) = self.pending.iter().position(|p| p.id == id) else {
            return false;
        };
        let p = self.pending.remove(idx);
        self.resolve_err(p, TicketError::Cancelled);
        true
    }

    /// Fails every pending request with `err` (worker panic isolation and
    /// engine sort failures).  The queue is left empty and consistent.
    pub fn fail_pending(&mut self, err: TicketError) {
        while let Some(p) = self.pending.pop() {
            self.resolve_err(p, err);
        }
        debug_assert_eq!(self.pending_bytes, 0);
    }

    /// Counts one isolated worker panic on the shared service counters.
    pub fn note_worker_panic(&self) {
        self.counters.note_worker_failure();
    }

    /// Removes requests that were cancelled after their `Cancel` message
    /// was processed (or raced the flush), and requests whose dispatch
    /// deadline has fully expired.  Runs at the head of every flush, so a
    /// batch never sorts work nobody is waiting for.
    fn sweep_before_flush(&mut self) {
        let cancelled: Vec<u64> = {
            let set = self.cancels.lock().unwrap();
            if set.is_empty() {
                Vec::new()
            } else {
                self.pending
                    .iter()
                    .filter(|p| set.contains(&p.id))
                    .map(|p| p.id)
                    .collect()
            }
        };
        for id in cancelled {
            self.cancel(id);
        }
        let now = Instant::now();
        let mut i = 0;
        while i < self.pending.len() {
            let expired = self.pending[i]
                .deadline
                .is_some_and(|d| now.saturating_duration_since(self.pending[i].submitted) > d);
            if expired {
                let p = self.pending.remove(i);
                self.resolve_err(p, TicketError::DeadlineExceeded);
            } else {
                i += 1;
            }
        }
    }

    /// Runs the pending batch as one sharded sort, demultiplexes the result
    /// back into every request's buffers and resolves their tickets.
    /// Returns `None` when nothing was pending.
    pub fn flush(&mut self, reason: FlushReason, batch: u64) -> Option<FlushSummary> {
        self.sweep_before_flush();
        if self.pending.is_empty() {
            return None;
        }
        let dispatch = Instant::now();
        // The pending requests leave the queue now; the live gauges drop to
        // zero while the batch itself sorts.
        self.probe.queue_depth.set(0);
        self.probe.pending_bytes.set(0);

        // Assemble: concatenate keys, tag each with (slot << 32) | demux.
        self.batch_keys.clear();
        self.batch_tags.clear();
        self.lens.clear();
        for (slot, p) in self.pending.iter().enumerate() {
            self.lens.push(p.keys.len());
            let hi = (slot as u64) << 32;
            match &p.values {
                Some(values) => {
                    self.batch_keys.extend_from_slice(&p.keys);
                    self.batch_tags
                        .extend(values.iter().map(|&v| hi | v as u64));
                }
                None => {
                    self.batch_keys.extend_from_slice(&p.keys);
                    self.batch_tags
                        .extend((0..p.keys.len()).map(|i| hi | i as u64));
                }
            }
        }
        let elements = self.batch_keys.len() as u64;
        let bytes = elements * elem_bytes::<K>();

        // One sharded sort for the whole batch — through the fault-
        // tolerant engine path, panic-isolated: an engine panic or a typed
        // sort failure resolves every pending ticket with an error instead
        // of killing the worker (or hanging the requesters).
        let sorted = {
            let sorter = &self.sorter;
            let keys = &mut self.batch_keys;
            let tags = &mut self.batch_tags;
            let lens = &self.lens;
            catch_unwind(AssertUnwindSafe(|| {
                sorter.try_sort_batch_pairs(keys, tags, lens)
            }))
        };
        let report = match sorted {
            Ok(Ok(report)) => Arc::new(report),
            Ok(Err(e)) => {
                self.fail_pending(TicketError::SortFailed(e));
                return None;
            }
            Err(_) => {
                self.counters.note_worker_failure();
                self.fail_pending(TicketError::WorkerFailed);
                return None;
            }
        };

        // Demux: each request's keys arrive in ascending order, so a
        // per-slot cursor writes them back in place.
        self.cursors.clear();
        self.cursors.resize(self.pending.len(), 0);
        for (&k, &tag) in self.batch_keys.iter().zip(self.batch_tags.iter()) {
            let slot = (tag >> 32) as usize;
            let c = self.cursors[slot];
            let p = &mut self.pending[slot];
            p.keys[c] = k;
            if let Some(values) = &mut p.values {
                values[c] = tag as u32;
            }
            self.cursors[slot] = c + 1;
        }

        // Resolve the tickets.  The batch counters are recorded *before*
        // the first outcome send, so a requester that just resolved its
        // ticket always sees its own batch in a snapshot.
        let requests = self.pending.len();
        let summary = FlushSummary {
            requests,
            elements,
            bytes,
            reason,
        };
        self.counters.note_flush(&summary);
        let info = BatchInfo {
            batch,
            requests,
            elements,
            bytes,
            reason,
        };
        // Prune resolved ids from the cancel set first: a cancel that
        // raced past the pre-flush sweep is a no-op (the batch already
        // dispatched) and must not leak its id.
        {
            let mut set = self.cancels.lock().unwrap();
            if !set.is_empty() {
                for p in &self.pending {
                    set.remove(&p.id);
                }
            }
        }
        for (slot, p) in self.pending.drain(..).enumerate() {
            let outcome = SortOutcome {
                payload: K::rebuild(p.keys, p.values),
                span: report.requests[slot],
                report: Arc::clone(&report),
                batch: info,
                queued: dispatch.saturating_duration_since(p.submitted),
            };
            // Release the admission slot first, then resolve the ticket (a
            // dropped ticket just discards its outcome).
            self.probe.latency_ns.record_duration(p.submitted.elapsed());
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            let _ = p.tx.send(Ok(outcome));
        }
        self.pending_bytes = 0;
        Some(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multi_gpu::DevicePool;

    fn queue<K: ServiceKey>() -> ClassQueue<K> {
        ClassQueue::new(
            ShardedSorter::new(DevicePool::titan_cluster(2)),
            Arc::new(AtomicUsize::new(usize::MAX / 2)),
            CancelSet::default(),
        )
    }

    type PendRx = mpsc::Receiver<Result<SortOutcome, TicketError>>;

    fn pend<K: ServiceKey>(
        id: u64,
        keys: Vec<K>,
        values: Option<Vec<u32>>,
    ) -> (Pending<K>, PendRx) {
        let (tx, rx) = mpsc::channel();
        (
            Pending {
                id,
                keys,
                values,
                tx,
                submitted: Instant::now(),
                deadline: None,
            },
            rx,
        )
    }

    #[test]
    fn flush_of_empty_queue_is_none() {
        assert!(queue::<u32>().flush(FlushReason::Drain, 0).is_none());
    }

    #[test]
    fn oversize_request_check_trips_past_the_tag_limit() {
        // Regression (slot-tag packing): a ≥ 2³²-key request used to pass a
        // release build silently (`debug_assert!` only) and wrap its local
        // indices into other requests' slot bits.  The admission check must
        // trip exactly past MAX_REQUEST_KEYS.
        assert!(oversize_request_error(0).is_none());
        assert!(oversize_request_error(MAX_REQUEST_KEYS).is_none());
        let err = oversize_request_error(MAX_REQUEST_KEYS + 1).unwrap();
        match err {
            crate::SubmitError::TooManyKeys { keys, max } => {
                assert_eq!(keys, MAX_REQUEST_KEYS + 1);
                assert_eq!(max, MAX_REQUEST_KEYS);
            }
            other => panic!("wrong error: {other}"),
        }
        // The limit is exactly the 32-bit index space: one more key and a
        // local index would no longer fit the low tag half.
        assert_eq!(MAX_REQUEST_KEYS as u64, (1u64 << 32) - 1);
    }

    #[test]
    fn mixed_key_only_and_pair_requests_round_trip() {
        let mut q = queue::<u64>();
        let a_keys = workloads::uniform_keys::<u64>(5_000, 1);
        let b_keys = workloads::uniform_keys::<u64>(3_000, 2);
        let b_vals: Vec<u32> = (0..3_000).rev().collect();
        let c_keys: Vec<u64> = Vec::new();
        let (pa, ra) = pend(0, a_keys.clone(), None);
        let (pb, rb) = pend(1, b_keys.clone(), Some(b_vals.clone()));
        let (pc, rc) = pend(2, c_keys, None);
        q.push(pa);
        q.push(pb);
        q.push(pc);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pending_bytes(), (5_000 + 3_000) * 16);

        let summary = q.flush(FlushReason::Bytes, 7).unwrap();
        assert!(q.is_empty());
        assert_eq!(q.pending_bytes(), 0);
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.elements, 8_000);

        let oa = ra.try_recv().unwrap().unwrap();
        let SortPayload::U64Keys(sorted_a) = oa.payload else {
            panic!("wrong variant")
        };
        let mut expect_a = a_keys;
        expect_a.sort_unstable();
        assert_eq!(sorted_a, expect_a);
        assert_eq!(oa.span.offset, 0);
        assert_eq!(oa.span.len, 5_000);
        assert_eq!(oa.batch.batch, 7);
        assert_eq!(oa.batch.requests, 3);
        assert_eq!(oa.batch.reason, FlushReason::Bytes);

        let ob = rb.try_recv().unwrap().unwrap();
        let SortPayload::U64Pairs { keys, values } = ob.payload else {
            panic!("wrong variant")
        };
        assert!(workloads::pairs::verify_indexed_pair_sort(
            &b_keys,
            &keys,
            &values
                .iter()
                .map(|&v| 2_999 - v) // undo the reversed value mapping
                .collect::<Vec<u32>>(),
        ));
        assert_eq!(ob.span.offset, 5_000);

        let oc = rc.try_recv().unwrap().unwrap();
        assert!(oc.payload.is_empty());
        assert_eq!(oc.span.len, 0);
        // All three requests share one report.
        assert_eq!(oa.report.n, 8_000);
        assert_eq!(oa.report.requests.len(), 3);
    }

    #[test]
    fn u32_class_round_trips_too() {
        let mut q = queue::<u32>();
        let keys = workloads::uniform_keys::<u32>(4_000, 3);
        let (p, r) = pend(0, keys.clone(), None);
        q.push(p);
        q.flush(FlushReason::Linger, 0).unwrap();
        let SortPayload::U32Keys(sorted) = r.try_recv().unwrap().unwrap().payload else {
            panic!("wrong variant")
        };
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn batch_buffers_are_reused_across_flushes() {
        let mut q = queue::<u32>();
        for round in 0..3 {
            let (p, _r) = pend(round, workloads::uniform_keys::<u32>(10_000, round), None);
            let (p2, _r2) = pend(
                round,
                workloads::uniform_keys::<u32>(6_000, round + 50),
                None,
            );
            q.push(p);
            q.push(p2);
            q.flush(FlushReason::Bytes, round).unwrap();
            // note: _r/_r2 dropped — flush must tolerate dropped tickets.
        }
        let keys_cap = q.batch_keys.capacity();
        let tags_cap = q.batch_tags.capacity();
        let (p, _r) = pend(9, workloads::uniform_keys::<u32>(16_000, 9), None);
        q.push(p);
        q.flush(FlushReason::Bytes, 9).unwrap();
        assert_eq!(q.batch_keys.capacity(), keys_cap, "assembly buffer grew");
        assert_eq!(q.batch_tags.capacity(), tags_cap, "tag buffer grew");
        // The sorter's device lanes stayed warm across flushes as well.
        assert!(q
            .sorter
            .lane_arena_stats()
            .iter()
            .any(|s| s.total_bytes() > 0));
    }
}
