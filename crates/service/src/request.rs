//! Request and response types of the batch sort service.

use crate::service::{CancelSet, WorkerMsg};
use multi_gpu::{RequestSpan, ShardedReport, SortError};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// The key class a payload sorts under.  Only payloads of the same class
/// can be coalesced into one batch (their keys are concatenated into a
/// single buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyClass {
    /// 32-bit keys.
    U32,
    /// 64-bit keys.
    U64,
}

impl KeyClass {
    /// Human-readable label (`"u32"` / `"u64"`).
    pub fn label(&self) -> &'static str {
        match self {
            KeyClass::U32 => "u32",
            KeyClass::U64 => "u64",
        }
    }
}

/// One sort request's data, and — inside a [`SortOutcome`] — its sorted
/// result, returned in the same buffers that were submitted.
///
/// Pair payloads carry a `u32` value per key (a row id in database terms);
/// the value doubles as the demux tag, which is what lets the service
/// recover every request's permuted values from the globally sorted batch
/// without any side-table lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortPayload {
    /// Key-only sort of 32-bit keys.
    U32Keys(Vec<u32>),
    /// Key-only sort of 64-bit keys.
    U64Keys(Vec<u64>),
    /// 32-bit keys, each carrying a 32-bit value.
    U32Pairs {
        /// The sort keys.
        keys: Vec<u32>,
        /// `values[i]` travels with `keys[i]`.
        values: Vec<u32>,
    },
    /// 64-bit keys, each carrying a 32-bit value.
    U64Pairs {
        /// The sort keys.
        keys: Vec<u64>,
        /// `values[i]` travels with `keys[i]`.
        values: Vec<u32>,
    },
}

impl SortPayload {
    /// Number of keys in the payload.
    pub fn len(&self) -> usize {
        match self {
            SortPayload::U32Keys(k) => k.len(),
            SortPayload::U64Keys(k) => k.len(),
            SortPayload::U32Pairs { keys, .. } => keys.len(),
            SortPayload::U64Pairs { keys, .. } => keys.len(),
        }
    }

    /// Whether the payload holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The key class batching groups this payload under.
    pub fn class(&self) -> KeyClass {
        match self {
            SortPayload::U32Keys(_) | SortPayload::U32Pairs { .. } => KeyClass::U32,
            SortPayload::U64Keys(_) | SortPayload::U64Pairs { .. } => KeyClass::U64,
        }
    }

    /// Whether a value travels with every key.
    pub fn is_pairs(&self) -> bool {
        matches!(
            self,
            SortPayload::U32Pairs { .. } | SortPayload::U64Pairs { .. }
        )
    }

    /// Payload size in bytes as the admission control counts it: keys plus
    /// the per-key demux tag every batched element carries through the
    /// device phase (the tag subsumes the pair value).  Shares
    /// [`crate::batch::elem_bytes`] with the queue accounting so the two
    /// can never drift apart.
    pub fn batch_bytes(&self) -> u64 {
        let elem = match self.class() {
            KeyClass::U32 => crate::batch::elem_bytes::<u32>(),
            KeyClass::U64 => crate::batch::elem_bytes::<u64>(),
        };
        self.len() as u64 * elem
    }

    /// Wraps the payload into a [`SortRequest`] with a dispatch deadline:
    /// the service must dispatch the request's batch within `deadline` of
    /// submission, or resolve the ticket with
    /// [`TicketError::DeadlineExceeded`].
    pub fn with_deadline(self, deadline: Duration) -> SortRequest {
        SortRequest::from(self).with_deadline(deadline)
    }
}

/// One submission to [`SortService::submit`](crate::SortService::submit):
/// a payload plus optional per-request quality-of-service attributes.
///
/// `submit` takes `impl Into<SortRequest>`, so a bare [`SortPayload`]
/// still submits directly; attach a deadline with
/// [`SortPayload::with_deadline`] or [`SortRequest::with_deadline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortRequest {
    /// The data to sort.
    pub payload: SortPayload,
    /// Dispatch deadline: the batch carrying this request must dispatch
    /// within this much time of submission.  The worker wakes early to
    /// flush a class whose deadline approaches
    /// ([`FlushReason::Deadline`]); a request whose deadline has fully
    /// expired before dispatch resolves with
    /// [`TicketError::DeadlineExceeded`] instead of sorting.
    pub deadline: Option<Duration>,
}

impl SortRequest {
    /// Sets the dispatch deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl From<SortPayload> for SortRequest {
    fn from(payload: SortPayload) -> Self {
        SortRequest {
            payload,
            deadline: None,
        }
    }
}

/// Why [`SortService::submit`](crate::SortService::submit) rejected a
/// request.  Rejections are immediate and lossless — the payload was not
/// enqueued and no ticket exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// `queue_depth` requests are already in flight; retry after some
    /// tickets resolve.  This is the explicit backpressure signal.
    Saturated {
        /// Requests currently admitted and not yet completed.
        in_flight: usize,
        /// The configured admission limit.
        queue_depth: usize,
    },
    /// The single request exceeds the device pool's admission budget and
    /// the service's [`OverBudgetPolicy`](crate::OverBudgetPolicy) is
    /// `Reject` — with the `OutOfCore` policy the request would instead be
    /// admitted into the chunked out-of-core lane.
    TooLarge {
        /// The request's size in batch bytes (keys + demux tags).
        bytes: u64,
        /// The pool budget after the configured slack.
        budget: u64,
    },
    /// The request holds more keys than the batch demux-tag scheme can
    /// address: every batched key carries a `(slot << 32) | index` tag, so
    /// a request's local index must fit 32 bits.  A larger request would
    /// silently corrupt every other request's tags in release builds (this
    /// used to be a `debug_assert!` only); it is now rejected at admission.
    TooManyKeys {
        /// Number of keys submitted.
        keys: usize,
        /// The largest batchable request in keys
        /// ([`crate::batch::MAX_REQUEST_KEYS`]).
        max: usize,
    },
    /// A pair payload whose key and value lengths differ.
    MismatchedPair {
        /// Number of keys submitted.
        keys: usize,
        /// Number of values submitted.
        values: usize,
    },
    /// More than half of the device pool is marked dead: the service is in
    /// degraded mode and sheds new load rather than queueing work the
    /// remaining devices cannot absorb.  In-flight requests still resolve
    /// (the fault-tolerant engine requeues onto the survivors).
    Degraded {
        /// Devices still alive in the pool.
        alive: usize,
        /// Total devices the pool was built with.
        total: usize,
    },
    /// The service is shutting down and accepts no further requests.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated {
                in_flight,
                queue_depth,
            } => write!(
                f,
                "service saturated: {in_flight} requests in flight (queue depth {queue_depth})"
            ),
            SubmitError::TooLarge { bytes, budget } => write!(
                f,
                "request of {bytes} bytes exceeds the pool admission budget of {budget} bytes"
            ),
            SubmitError::TooManyKeys { keys, max } => write!(
                f,
                "request of {keys} keys exceeds the {max}-key demux-tag limit of a batch"
            ),
            SubmitError::MismatchedPair { keys, values } => {
                write!(f, "pair payload with {keys} keys but {values} values")
            }
            SubmitError::Degraded { alive, total } => write!(
                f,
                "service degraded: only {alive} of {total} devices alive; shedding new load"
            ),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What made the worker close a batch and dispatch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The class's pending bytes reached `max_batch_bytes`.
    Bytes,
    /// The oldest pending request waited `max_linger`.
    Linger,
    /// The class's pending request count reached `max_batch_requests`.
    RequestCap,
    /// A pending request's dispatch deadline approached: the worker
    /// flushed the class early (at 80 % of the deadline) so the batch
    /// dispatches before the deadline expires.
    Deadline,
    /// Shutdown drain: the submission queue disconnected.
    Drain,
    /// The request exceeded the admission budget and rode the dedicated
    /// out-of-core lane (one chunked sharded sort per request, no
    /// coalescing).
    OutOfCore,
}

impl FlushReason {
    /// Short label for logs and the bench JSON.
    pub fn label(&self) -> &'static str {
        match self {
            FlushReason::Bytes => "bytes",
            FlushReason::Linger => "linger",
            FlushReason::RequestCap => "request-cap",
            FlushReason::Deadline => "deadline",
            FlushReason::Drain => "drain",
            FlushReason::OutOfCore => "out-of-core",
        }
    }
}

/// Identity and shape of the batch a request rode in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchInfo {
    /// Monotonic batch id, unique per service instance.
    pub batch: u64,
    /// Requests coalesced into the batch.
    pub requests: usize,
    /// Total keys across the batch.
    pub elements: u64,
    /// Total batch bytes (keys + demux tags).
    pub bytes: u64,
    /// What triggered the flush.
    pub reason: FlushReason,
}

/// The resolved result of one sort request.
#[derive(Debug)]
pub struct SortOutcome {
    /// The sorted payload, in the buffers the request submitted.
    pub payload: SortPayload,
    /// This request's slice of the batch (offset/length in the
    /// concatenated input, mirroring
    /// [`ShardedReport::requests`]).
    pub span: RequestSpan,
    /// The batch's shared sharded-sort report: schedule, critical path,
    /// per-shard breakdown.  One `Arc` per batch, shared by all its
    /// requests.
    pub report: Arc<ShardedReport>,
    /// The batch this request was coalesced into.
    pub batch: BatchInfo,
    /// Time from submission to batch dispatch (queueing + linger).
    pub queued: Duration,
}

/// Why waiting on a [`SortTicket`] failed.
///
/// Every variant is a *terminal* resolution: the ticket will never yield a
/// [`SortOutcome`], and the request's admission slot has been released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketError {
    /// The service (and its worker) terminated before resolving the
    /// ticket.  Cannot happen through the public API: shutdown drains every
    /// pending request first.
    ServiceDropped,
    /// The request was cancelled via [`SortTicket::cancel`] before its
    /// batch dispatched.
    Cancelled,
    /// The request's dispatch deadline expired before its batch
    /// dispatched (see [`SortRequest::deadline`]).
    DeadlineExceeded,
    /// The sharded engine could not complete the request's batch even
    /// after fault recovery (all devices dead, or the retry budget ran
    /// out).  The typed engine error says which.
    SortFailed(SortError),
    /// A worker thread panicked while processing the request's batch.  The
    /// service survives — the panic is isolated, pending requests are
    /// resolved with this error, and new submissions keep working.
    WorkerFailed,
}

impl std::fmt::Display for TicketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TicketError::ServiceDropped => write!(f, "service dropped before the sort completed"),
            TicketError::Cancelled => write!(f, "request cancelled before its batch dispatched"),
            TicketError::DeadlineExceeded => {
                write!(f, "request deadline expired before its batch dispatched")
            }
            TicketError::SortFailed(e) => write!(f, "sharded sort failed: {e}"),
            TicketError::WorkerFailed => {
                write!(f, "service worker panicked while processing the request")
            }
        }
    }
}

impl std::error::Error for TicketError {}

/// A handle to one in-flight sort request, resolving to a [`SortOutcome`].
#[derive(Debug)]
pub struct SortTicket {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<Result<SortOutcome, TicketError>>,
    /// Wakes the batching worker so a cancel takes effect promptly; `None`
    /// for tickets riding the out-of-core lane (its worker checks the
    /// cancel set before dispatching).
    pub(crate) cancel_tx: Option<mpsc::Sender<WorkerMsg>>,
    /// The service-wide set of cancelled request ids.
    pub(crate) cancel_set: Option<CancelSet>,
}

impl SortTicket {
    /// The request id assigned at submission (monotonic per service).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation.  Best-effort: if the request is still
    /// pending in its class queue (or waiting in the out-of-core lane),
    /// it is unpicked — its bytes leave the queue accounting, its
    /// admission slot is released and the ticket resolves with
    /// [`TicketError::Cancelled`].  A request whose batch already
    /// dispatched completes normally.
    pub fn cancel(&self) {
        if let Some(set) = &self.cancel_set {
            set.lock().unwrap().insert(self.id);
        }
        if let Some(tx) = &self.cancel_tx {
            let _ = tx.send(WorkerMsg::Cancel(self.id));
        }
    }

    /// Blocks until the request resolves and returns the outcome.
    pub fn wait(self) -> Result<SortOutcome, TicketError> {
        match self.rx.recv() {
            Ok(resolved) => resolved,
            Err(_) => Err(TicketError::ServiceDropped),
        }
    }

    /// Non-blocking poll: the outcome if the request already resolved.
    pub fn try_wait(&mut self) -> Result<Option<SortOutcome>, TicketError> {
        match self.rx.try_recv() {
            Ok(Ok(outcome)) => Ok(Some(outcome)),
            Ok(Err(err)) => Err(err),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(TicketError::ServiceDropped),
        }
    }

    /// Bounded wait: blocks at most `timeout` for the request to resolve.
    /// `Ok(None)` means the timeout elapsed with the request still in
    /// flight — the ticket stays valid and can be waited on again.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<Option<SortOutcome>, TicketError> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(outcome)) => Ok(Some(outcome)),
            Ok(Err(err)) => Err(err),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(TicketError::ServiceDropped),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_accounting() {
        let p = SortPayload::U32Keys(vec![3, 1, 2]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.class(), KeyClass::U32);
        assert!(!p.is_pairs());
        assert_eq!(p.batch_bytes(), 3 * (4 + 8));

        let q = SortPayload::U64Pairs {
            keys: vec![9, 8],
            values: vec![0, 1],
        };
        assert_eq!(q.class(), KeyClass::U64);
        assert!(q.is_pairs());
        assert_eq!(q.batch_bytes(), 2 * (8 + 8));
        assert!(SortPayload::U64Keys(Vec::new()).is_empty());
        assert_eq!(KeyClass::U32.label(), "u32");
        assert_eq!(KeyClass::U64.label(), "u64");
    }

    #[test]
    fn errors_render() {
        let s = SubmitError::Saturated {
            in_flight: 8,
            queue_depth: 8,
        };
        assert!(s.to_string().contains("saturated"));
        assert!(SubmitError::TooLarge {
            bytes: 10,
            budget: 5
        }
        .to_string()
        .contains("budget"));
        assert!(SubmitError::MismatchedPair { keys: 2, values: 3 }
            .to_string()
            .contains("2 keys"));
        assert!(SubmitError::TooManyKeys {
            keys: 5_000_000_000,
            max: u32::MAX as usize
        }
        .to_string()
        .contains("demux-tag"));
        assert!(SubmitError::ShuttingDown.to_string().contains("shutting"));
        assert!(SubmitError::Degraded { alive: 1, total: 4 }
            .to_string()
            .contains("1 of 4"));
        assert!(TicketError::ServiceDropped.to_string().contains("dropped"));
        assert!(TicketError::Cancelled.to_string().contains("cancelled"));
        assert!(TicketError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(TicketError::WorkerFailed.to_string().contains("panicked"));
        assert!(
            TicketError::SortFailed(SortError::AllDevicesDead { failed: 2 })
                .to_string()
                .contains("dead")
        );
        assert_eq!(FlushReason::Linger.label(), "linger");
        assert_eq!(FlushReason::Drain.label(), "drain");
        assert_eq!(FlushReason::Deadline.label(), "deadline");
        assert_eq!(FlushReason::OutOfCore.label(), "out-of-core");
    }

    #[test]
    fn deadlines_attach_to_payloads() {
        let req = SortPayload::U32Keys(vec![1]).with_deadline(Duration::from_millis(5));
        assert_eq!(req.deadline, Some(Duration::from_millis(5)));
        let bare: SortRequest = SortPayload::U32Keys(vec![1]).into();
        assert_eq!(bare.deadline, None);
        assert_eq!(
            bare.with_deadline(Duration::from_secs(1)).deadline,
            Some(Duration::from_secs(1))
        );
    }
}
