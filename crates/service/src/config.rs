//! Service tuning knobs.

use hrs_core::Executor;
use std::time::Duration;

/// What [`SortService::submit`](crate::SortService::submit) does with a
/// request larger than the pool's admission budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverBudgetPolicy {
    /// Reject the request with
    /// [`SubmitError::TooLarge`](crate::SubmitError::TooLarge) — the
    /// pre-out-of-core behaviour, and the default.
    #[default]
    Reject,
    /// Admit the request into the dedicated out-of-core lane: it bypasses
    /// batching entirely and runs as one
    /// [`multi_gpu::ShardedSorter::sort_out_of_core`] sort, each device
    /// streaming its shard through the chunked full-duplex pipeline of
    /// Section 5.  The maximum sortable request is then bounded by host
    /// memory, not by device memory.
    OutOfCore,
}

/// Configuration of a [`SortService`](crate::SortService).
///
/// The two batching knobs trade latency for throughput exactly like a
/// group-commit log: `max_batch_bytes` is the size-based admission
/// threshold (a class flushes as soon as its pending bytes reach it) and
/// `max_linger` is the deadline-based one (no admitted request waits longer
/// than this for co-travellers).  Both are further capped by the device
/// pool's memory budget at service start.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum requests in flight (admitted but not yet resolved) before
    /// [`submit`](crate::SortService::submit) returns
    /// [`SubmitError::Saturated`](crate::SubmitError::Saturated).
    pub queue_depth: usize,
    /// Flush a key class once its pending payload reaches this many batch
    /// bytes (keys + demux tags).  Clamped to the pool admission budget.
    pub max_batch_bytes: u64,
    /// Flush a key class once its oldest pending request has waited this
    /// long.
    pub max_linger: Duration,
    /// Flush a key class once it holds this many pending requests.  Set to
    /// `1` to disable coalescing entirely (every request becomes its own
    /// batch) — the baseline mode of `bench_service`.
    pub max_batch_requests: usize,
    /// Fraction of [`multi_gpu::DevicePool::batch_budget_bytes`]
    /// the admission budget uses.  The slack absorbs splitter
    /// imbalance (shards are only *expected* to be capacity-proportional)
    /// and the one-request overshoot a flush-after-admit batch can carry.
    pub budget_slack: f64,
    /// Executor that runs ready batches of different key classes
    /// concurrently.  Shard fan-out *within* a batch is governed by the
    /// sorter's own host executor instead.
    pub flush_executor: Executor,
    /// What to do with a request above the admission budget: bounce it
    /// ([`OverBudgetPolicy::Reject`]) or stream it through the out-of-core
    /// lane ([`OverBudgetPolicy::OutOfCore`]).
    pub over_budget: OverBudgetPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: 256,
            max_batch_bytes: 32 << 20,
            max_linger: Duration::from_millis(2),
            max_batch_requests: 1024,
            budget_slack: 0.5,
            flush_executor: Executor::with_workers(2),
            over_budget: OverBudgetPolicy::default(),
        }
    }
}

impl ServiceConfig {
    /// Sets the in-flight request limit (≥ 1).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the size-based flush threshold.
    pub fn with_max_batch_bytes(mut self, bytes: u64) -> Self {
        self.max_batch_bytes = bytes.max(1);
        self
    }

    /// Sets the deadline-based flush threshold.
    pub fn with_max_linger(mut self, linger: Duration) -> Self {
        self.max_linger = linger;
        self
    }

    /// Sets the request-count flush threshold (≥ 1; `1` disables
    /// coalescing).  Clamped to [`crate::batch::MAX_BATCH_SLOTS`]: a batch
    /// tags every key with its request slot in the high 32 tag bits, so no
    /// batch may hold more requests than the slot space addresses.
    pub fn with_max_batch_requests(mut self, requests: usize) -> Self {
        self.max_batch_requests = requests.clamp(1, crate::batch::MAX_BATCH_SLOTS);
        self
    }

    /// Sets the over-budget policy.
    pub fn with_over_budget(mut self, policy: OverBudgetPolicy) -> Self {
        self.over_budget = policy;
        self
    }

    /// Sets the admission-budget slack fraction (clamped to `(0, 1]`).
    pub fn with_budget_slack(mut self, slack: f64) -> Self {
        self.budget_slack = slack.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Replaces the executor that flushes ready classes concurrently.
    pub fn with_flush_executor(mut self, exec: Executor) -> Self {
        self.flush_executor = exec;
        self
    }

    /// A configuration that makes every request its own batch — the
    /// one-request-per-batch scheduling `bench_service` compares against.
    pub fn unbatched() -> Self {
        ServiceConfig::default()
            .with_max_batch_requests(1)
            .with_max_linger(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp() {
        let cfg = ServiceConfig::default()
            .with_queue_depth(0)
            .with_max_batch_bytes(0)
            .with_max_batch_requests(0)
            .with_budget_slack(7.0);
        assert_eq!(cfg.queue_depth, 1);
        assert_eq!(cfg.max_batch_bytes, 1);
        assert_eq!(cfg.max_batch_requests, 1);
        assert_eq!(cfg.budget_slack, 1.0);
        assert!(ServiceConfig::default().budget_slack < 1.0);
        assert_eq!(ServiceConfig::unbatched().max_batch_requests, 1);
        assert_eq!(ServiceConfig::unbatched().max_linger, Duration::ZERO);
    }

    #[test]
    fn request_cap_is_clamped_to_the_slot_space() {
        // Regression (slot-tag packing): a batch cannot hold more requests
        // than the 32-bit slot half of the demux tag can address.
        let cfg = ServiceConfig::default().with_max_batch_requests(usize::MAX);
        assert_eq!(cfg.max_batch_requests, crate::batch::MAX_BATCH_SLOTS);
        assert!(crate::batch::MAX_BATCH_SLOTS <= u32::MAX as usize);
    }

    #[test]
    fn over_budget_defaults_to_reject() {
        assert_eq!(
            ServiceConfig::default().over_budget,
            OverBudgetPolicy::Reject
        );
        let cfg = ServiceConfig::default().with_over_budget(OverBudgetPolicy::OutOfCore);
        assert_eq!(cfg.over_budget, OverBudgetPolicy::OutOfCore);
    }
}
