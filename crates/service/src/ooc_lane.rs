//! The dedicated out-of-core lane for over-budget requests.
//!
//! A request larger than the pool's admission budget can never be batched —
//! no formed batch may exceed what the devices' memory planners allow.
//! Under [`OverBudgetPolicy::OutOfCore`](crate::OverBudgetPolicy::OutOfCore)
//! such a request is instead admitted into this lane: its own worker
//! thread, its own sorter clone (own warm device lanes), no coalescing.
//! Each request runs as one
//! [`multi_gpu::ShardedSorter::sort_out_of_core`] sort — every device
//! streams its shard through the chunked full-duplex PCIe pipeline of
//! Section 5 — and resolves with the per-chunk
//! [`multi_gpu::OocChunkSpan`]s in its shared report.
//!
//! The lane reports into the same live `service/...` counters as the
//! batching worker (`service/ooc/{requests,chunks,latency_ns}`), so
//! [`SortService::stats_snapshot`](crate::SortService::stats_snapshot) and
//! [`ServiceStats`](crate::ServiceStats) cover it without any
//! shutdown-time merging.
//!
//! Keeping the lane on its own thread means a multi-gigabyte streaming
//! sort never blocks the latency-sensitive batching worker next door.

use crate::counters::ServiceCounters;
use crate::request::{BatchInfo, FlushReason, SortOutcome, SortPayload, TicketError};
use crate::service::{CancelSet, Submission};
use multi_gpu::{RequestSpan, ShardedReport, ShardedSorter, SortError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// The lane worker: owns a sorter clone and drains its own channel.
pub(crate) struct OocLaneWorker {
    sorter: ShardedSorter,
    in_flight: Arc<AtomicUsize>,
    next_batch: Arc<AtomicU64>,
    counters: Arc<ServiceCounters>,
    cancels: CancelSet,
}

impl OocLaneWorker {
    pub(crate) fn new(
        sorter: ShardedSorter,
        in_flight: Arc<AtomicUsize>,
        next_batch: Arc<AtomicU64>,
        cancels: CancelSet,
    ) -> Self {
        let counters = ServiceCounters::register(sorter.inspector());
        OocLaneWorker {
            sorter,
            in_flight,
            next_batch,
            counters,
            cancels,
        }
    }

    pub(crate) fn run(self, rx: mpsc::Receiver<Submission>) {
        while let Ok(sub) = rx.recv() {
            self.handle(sub);
        }
    }

    /// Resolves one request with a terminal error instead of an outcome.
    fn resolve_err(
        &self,
        id: u64,
        tx: &mpsc::Sender<Result<SortOutcome, TicketError>>,
        err: TicketError,
    ) {
        self.cancels.lock().unwrap().remove(&id);
        self.counters.note_failed(&err);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        let _ = tx.send(Err(err));
    }

    /// Runs one over-budget request end to end and resolves its ticket.
    fn handle(&self, sub: Submission) {
        let Submission {
            id,
            payload,
            deadline,
            tx,
            submitted,
        } = sub;
        // QoS gates before committing the devices: a cancelled request is
        // dropped, and a request whose dispatch deadline already expired
        // while queued behind earlier lane work fails fast.
        if self.cancels.lock().unwrap().contains(&id) {
            return self.resolve_err(id, &tx, TicketError::Cancelled);
        }
        if deadline.is_some_and(|d| submitted.elapsed() > d) {
            return self.resolve_err(id, &tx, TicketError::DeadlineExceeded);
        }
        let dispatch = Instant::now();
        let elements = payload.len() as u64;
        let bytes = payload.batch_bytes();
        // The sort runs through the fault-tolerant engine path, panic-
        // isolated: a typed engine failure or an engine panic resolves the
        // ticket with an error and the lane keeps serving.
        type Sorted = Result<(SortPayload, ShardedReport), SortError>;
        let sorter = &self.sorter;
        let sorted: std::thread::Result<Sorted> =
            catch_unwind(AssertUnwindSafe(|| match payload {
                SortPayload::U32Keys(mut keys) => sorter
                    .try_sort_out_of_core_batch(&mut keys)
                    .map(|report| (SortPayload::U32Keys(keys), report)),
                SortPayload::U64Keys(mut keys) => sorter
                    .try_sort_out_of_core_batch(&mut keys)
                    .map(|report| (SortPayload::U64Keys(keys), report)),
                SortPayload::U32Pairs {
                    mut keys,
                    mut values,
                } => sorter
                    .try_sort_out_of_core_batch_pairs(&mut keys, &mut values)
                    .map(|report| (SortPayload::U32Pairs { keys, values }, report)),
                SortPayload::U64Pairs {
                    mut keys,
                    mut values,
                } => sorter
                    .try_sort_out_of_core_batch_pairs(&mut keys, &mut values)
                    .map(|report| (SortPayload::U64Pairs { keys, values }, report)),
            }));
        let (payload, report) = match sorted {
            Ok(Ok(done)) => done,
            Ok(Err(e)) => {
                return self.resolve_err(id, &tx, TicketError::SortFailed(e));
            }
            Err(_) => {
                self.counters.note_worker_failure();
                return self.resolve_err(id, &tx, TicketError::WorkerFailed);
            }
        };
        let chunks = report.ooc_chunks.len() as u64;
        let outcome = Self::outcome(
            payload,
            report,
            // RELAXED: the batch id only needs to be unique, which the RMW
            // guarantees; no other state is published through it.
            self.next_batch.fetch_add(1, Ordering::Relaxed),
            bytes,
            dispatch.saturating_duration_since(submitted),
        );
        self.counters
            .note_ooc(elements, chunks, submitted.elapsed());
        self.cancels.lock().unwrap().remove(&id);
        // Release the admission slot first, then resolve the ticket (a
        // dropped ticket just discards its outcome) — same order as the
        // batching lane, so a requester can resubmit immediately.
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        let _ = tx.send(Ok(outcome));
    }

    fn outcome(
        payload: SortPayload,
        report: ShardedReport,
        batch: u64,
        bytes: u64,
        queued: std::time::Duration,
    ) -> SortOutcome {
        let elements = payload.len() as u64;
        let span = report.requests.first().copied().unwrap_or(RequestSpan {
            index: 0,
            offset: 0,
            len: elements,
        });
        SortOutcome {
            payload,
            span,
            report: Arc::new(report),
            batch: BatchInfo {
                batch,
                requests: 1,
                elements,
                bytes,
                reason: FlushReason::OutOfCore,
            },
            queued,
        }
    }
}
