//! # sort-service — an async batch sort service over the device pool
//!
//! Stehle & Jacobsen's hybrid radix sort wins by keeping every byte of
//! memory bandwidth busy; a production front end must do the same with
//! *devices*.  A small sort request that occupies a whole
//! [`multi_gpu::DevicePool`] wastes the machine exactly like a
//! partially-filled memory transaction wastes a bus — and the GPU sorting
//! survey of Arkhipov et al. observes that end-to-end throughput in
//! database deployments is dominated by scheduling and transfer
//! orchestration, not the kernel.  This crate is that orchestration layer:
//!
//! * [`SortService`] accepts many concurrent [`SortPayload`] submissions
//!   over a bounded queue and returns a [`SortTicket`] per request;
//! * a worker loop coalesces small requests of the same key class into
//!   batches, flushing on a size threshold (`max_batch_bytes`), a deadline
//!   (`max_linger`), a request cap, or drain at shutdown;
//! * **admission control** checks every request and every batch against the
//!   pool's per-device memory budgets
//!   ([`gpu_sim::DeviceMemoryPlanner::sort_budget_bytes`] queried through
//!   [`multi_gpu::DevicePool::batch_budget_bytes`]), so a batch can never
//!   be formed that would not fit its shards on the devices;
//! * **backpressure is explicit**: when `queue_depth` requests are already
//!   in flight, [`SortService::submit`] returns
//!   [`SubmitError::Saturated`] instead of queueing unboundedly;
//! * each batch runs as **one** sharded sort
//!   ([`multi_gpu::ShardedSorter::sort_batch_pairs`]) with every key tagged
//!   by its request slot, and the worker demultiplexes the globally sorted
//!   output back into each request's own buffers — in place, with no
//!   steady-state allocation (batch assembly buffers and the per-device
//!   sorter lanes' scratch arenas are reused across batches);
//! * ready batches of different key classes are flushed concurrently
//!   through an [`hrs_core::Executor`], and each flush fans its shards out
//!   over the pool exactly like a direct [`multi_gpu::ShardedSorter`] call.
//!
//! The resolved [`SortTicket`] yields a [`SortOutcome`]: the sorted payload
//! (in the requester's own buffers), the request's [`RequestSpan`] slice of
//! the batch, and the batch's shared [`multi_gpu::ShardedReport`].
//!
//! The service is **observable while it runs**: every lifetime counter in
//! [`ServiceStats`] is a shared atomic on the sorter's
//! [`telemetry::Inspector`], so [`SortService::stats_snapshot`] returns
//! live queue depths, flush-reason counts, admission rejections and
//! submit→outcome latency percentiles at any moment, and
//! [`SortService::inspector`] exposes the whole tree — service, sharded
//! engine, out-of-core lane, per-device core sorters — as one
//! JSON-serialisable [`telemetry::InspectNode`] snapshot.
//!
//! ## Quick start
//!
//! ```
//! use sort_service::{ServiceConfig, SortPayload, SortService};
//! use multi_gpu::{DevicePool, ShardedSorter};
//!
//! let service = SortService::start(
//!     ShardedSorter::new(DevicePool::titan_cluster(2)),
//!     ServiceConfig::default(),
//! );
//! let tickets: Vec<_> = (0..4)
//!     .map(|seed| {
//!         let keys = workloads::uniform_keys::<u64>(10_000, seed);
//!         service.submit(SortPayload::U64Keys(keys)).unwrap()
//!     })
//!     .collect();
//! for ticket in tickets {
//!     let outcome = ticket.wait().unwrap();
//!     let SortPayload::U64Keys(keys) = outcome.payload else { unreachable!() };
//!     assert!(keys.windows(2).all(|w| w[0] <= w[1]));
//! }
//! // Live counters, no shutdown needed — and the full inspection tree.
//! let live = service.stats_snapshot();
//! assert_eq!(live.requests, 4);
//! let snapshot = service.inspector().snapshot();
//! assert_eq!(snapshot.node("service").unwrap().uint("requests"), Some(4));
//! let stats = service.shutdown();
//! assert_eq!(stats.requests, 4);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod config;
mod counters;
pub mod ooc_lane;
pub mod request;
pub mod service;

pub use config::{OverBudgetPolicy, ServiceConfig};
pub use multi_gpu::{FaultEvent, FaultEventKind, OocChunkSpan, RequestSpan, SortError};
pub use request::{
    BatchInfo, FlushReason, KeyClass, SortOutcome, SortPayload, SortRequest, SortTicket,
    SubmitError, TicketError,
};
pub use service::{ServiceStats, SortService};
pub use telemetry::{InspectNode, Inspector};
