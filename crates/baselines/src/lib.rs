//! # baselines — the comparison sorts of the paper's evaluation
//!
//! The paper compares its hybrid radix sort against
//!
//! * **CUB** (v1.5.1, 5-bit digits; v1.6.4, 7-bit digits) — the
//!   state-of-the-art GPU LSD radix sort by Merrill et al.,
//! * **Thrust** — an older GPU LSD radix sort using 4-bit digits,
//! * **Satish et al.** — an LSD radix sort performing the shared-memory
//!   partitioning with repeated binary splits (compute-bound),
//! * **MGPU** — Baxter's GPU merge sort,
//! * **GPU Multisplit** (appendix) — a warp-synchronous multisplit-based
//!   radix sort,
//! * **PARADIS** — a parallel in-place CPU radix sort (the end-to-end
//!   comparison of Figure 9).
//!
//! Each GPU baseline is implemented *functionally* (it really sorts, so the
//! test suite can verify it against the standard library) and *analytically*
//! (its pass structure and per-pass memory traffic are fed through the same
//! [`gpu_sim`] device model used for the hybrid sort, so the comparison
//! factors follow from the algorithms rather than from tuned constants).
//! PARADIS is represented by a real multi-threaded CPU radix sort plus the
//! runtimes reported in the PARADIS paper, which is what the paper itself
//! compares against.

#![warn(missing_docs)]

pub mod lsd_radix;
pub mod merge_sort;
pub mod multisplit;
pub mod paradis;
pub mod reference;

pub use lsd_radix::{GpuLsdConfig, GpuLsdRadixSort};
pub use merge_sort::GpuMergeSort;
pub use multisplit::MultisplitRadixSort;
pub use paradis::{ParadisConfig, ParadisSort};
pub use reference::{paradis_reported_seconds, ReportedDistribution};

use gpu_sim::{Bandwidth, MemoryTraffic, SimTime};

/// Simulated execution summary of a baseline sorter, comparable to
/// `hrs_core::SortReport::simulated`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Name of the baseline (e.g. `"CUB 1.5.1"`).
    pub name: String,
    /// Number of elements.
    pub n: u64,
    /// Key width in bytes.
    pub key_bytes: u32,
    /// Value width in bytes (0 for key-only sorts).
    pub value_bytes: u32,
    /// Number of passes over the data the algorithm performs.
    pub passes: u32,
    /// Device-memory traffic.
    pub traffic: MemoryTraffic,
    /// Total simulated duration.
    pub total: SimTime,
    /// Input bytes divided by the simulated duration.
    pub sorting_rate: Bandwidth,
}

impl BaselineReport {
    /// Input size in bytes (keys + values).
    pub fn input_bytes(&self) -> u64 {
        self.n * (self.key_bytes as u64 + self.value_bytes as u64)
    }

    /// One-line summary for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: n={} ({}+{} B), {} passes, {} -> {}",
            self.name,
            self.n,
            self.key_bytes,
            self.value_bytes,
            self.passes,
            self.total,
            self.sorting_rate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_report_helpers() {
        let r = BaselineReport {
            name: "CUB 1.5.1".to_string(),
            n: 1_000,
            key_bytes: 8,
            value_bytes: 8,
            passes: 13,
            traffic: MemoryTraffic::read_write(16_000),
            total: SimTime::from_millis(1.0),
            sorting_rate: Bandwidth::from_gb_per_s(16.0),
        };
        assert_eq!(r.input_bytes(), 16_000);
        assert!(r.summary().contains("CUB 1.5.1"));
        assert!(r.summary().contains("13 passes"));
    }
}
