//! GPU Multisplit radix sort baseline (Appendix A).
//!
//! Ashkiani et al.'s *GPU Multisplit* primitive partitions keys into buckets
//! using warp-synchronous ballots and warp-wide intrinsics instead of large
//! shared-memory histograms, which keeps the on-chip memory requirements low
//! and allows more bits per pass than classic LSD implementations without
//! sacrificing occupancy.  Used as the partitioning step of an LSD radix
//! sort it sits between CUB 1.5.1 and CUB 1.6.4 for 32-bit keys and is
//! roughly on par with CUB 1.6.4 for 32-bit/32-bit pairs — which is exactly
//! how the appendix's Figure 10 positions it.
//!
//! The functional implementation is an LSD radix sort whose per-pass
//! partitioning mirrors the warp-level multisplit (ballot-style counting per
//! 32-key group); the cost model charges the same traffic as an LSD pass
//! with slightly better write efficiency (warp-coalesced) but a
//! warp-ballot compute ceiling.

use crate::BaselineReport;
use gpu_sim::{DeviceSpec, KernelCost, KernelKind, MemoryTraffic, SimTime};
use workloads::SortKey;

/// The Multisplit-based radix sort baseline.
#[derive(Debug, Clone)]
pub struct MultisplitRadixSort {
    /// Bits per multisplit pass.
    pub digit_bits: u32,
    /// Efficiency of the scatter's read/write streams.
    pub scatter_rw_efficiency: f64,
    /// Warp-ballot compute ceiling in keys per second for the device.
    pub compute_keys_per_sec: f64,
    /// Fixed overhead per pass.
    pub pass_fixed_overhead_s: f64,
    /// Device model.
    pub device: DeviceSpec,
}

impl MultisplitRadixSort {
    /// The configuration matching the appendix evaluation.
    pub fn paper() -> Self {
        MultisplitRadixSort {
            digit_bits: 6,
            scatter_rw_efficiency: 0.80,
            compute_keys_per_sec: 90e9,
            pass_fixed_overhead_s: 0.4e-3,
            device: DeviceSpec::titan_x_pascal(),
        }
    }

    /// Number of passes for `key_bits`-bit keys.
    pub fn num_passes(&self, key_bits: u32) -> u32 {
        key_bits.div_ceil(self.digit_bits)
    }

    /// Sorts `keys` functionally and returns the simulated report.
    pub fn sort<K: SortKey>(&self, keys: &mut [K]) -> BaselineReport {
        let mut values: Vec<()> = vec![(); keys.len()];
        self.sort_pairs(keys, &mut values)
    }

    /// Sorts keys and values together.
    pub fn sort_pairs<K: SortKey, V: Copy + Default>(
        &self,
        keys: &mut [K],
        values: &mut [V],
    ) -> BaselineReport {
        assert_eq!(keys.len(), values.len());
        let n = keys.len();
        let radix = 1usize << self.digit_bits;
        let passes = self.num_passes(K::BITS);

        let mut src_k: Vec<u64> = keys.iter().map(|k| k.to_radix()).collect();
        let mut src_v: Vec<V> = values.to_vec();
        let mut dst_k = vec![0u64; n];
        let mut dst_v = vec![V::default(); n];

        for pass in 0..passes {
            let shift = self.digit_bits * pass;
            let mask = (radix - 1) as u64;

            // Warp-level multisplit: each 32-key group counts its digit
            // values with ballots; the per-warp counts are then combined
            // into the global histogram.  Functionally this is equivalent to
            // a histogram + stable scatter, which is what we do here, warp
            // group by warp group.
            let mut hist = vec![0usize; radix];
            for warp in src_k.chunks(32) {
                let mut warp_counts = vec![0u32; radix];
                for &k in warp {
                    warp_counts[((k >> shift) & mask) as usize] += 1;
                }
                for (h, &c) in hist.iter_mut().zip(warp_counts.iter()) {
                    *h += c as usize;
                }
            }
            let mut offsets = vec![0usize; radix];
            let mut acc = 0;
            for (o, &h) in offsets.iter_mut().zip(hist.iter()) {
                *o = acc;
                acc += h;
            }
            for i in 0..n {
                let d = ((src_k[i] >> shift) & mask) as usize;
                let pos = offsets[d];
                offsets[d] += 1;
                dst_k[pos] = src_k[i];
                dst_v[pos] = src_v[i];
            }
            std::mem::swap(&mut src_k, &mut dst_k);
            std::mem::swap(&mut src_v, &mut dst_v);
        }

        for (slot, bits) in keys.iter_mut().zip(src_k.iter()) {
            *slot = K::from_radix(*bits);
        }
        values.copy_from_slice(&src_v);

        let value_bytes = if std::mem::size_of::<V>() == 0 {
            0
        } else {
            std::mem::size_of::<V>() as u32
        };
        self.simulate(n as u64, K::BITS, value_bytes)
    }

    /// Analytical simulation.
    pub fn simulate(&self, n: u64, key_bits: u32, value_bytes: u32) -> BaselineReport {
        let key_bytes = (key_bits / 8).max(1);
        let passes = self.num_passes(key_bits);
        let keys_total = n * key_bytes as u64;
        let values_total = n * value_bytes as u64;
        let mut traffic = MemoryTraffic::default();
        let mut total = SimTime::ZERO;

        for _ in 0..passes {
            let mut up = MemoryTraffic::default();
            up.read(keys_total).launch();
            let up_t = KernelCost::memory_bound(KernelKind::Histogram, up)
                .with_compute(n, self.compute_keys_per_sec)
                .evaluate(&self.device);
            let mut down = MemoryTraffic::default();
            down.read(keys_total + values_total)
                .write(keys_total + values_total)
                .launch();
            let down_t = KernelCost::memory_bound(KernelKind::Scatter, down)
                .with_efficiency(self.scatter_rw_efficiency)
                .with_compute(n, self.compute_keys_per_sec)
                .evaluate(&self.device);
            traffic += up;
            traffic += down;
            total += up_t.total + down_t.total + SimTime::from_secs(self.pass_fixed_overhead_s);
        }

        let input_bytes = n * (key_bytes as u64 + value_bytes as u64);
        BaselineReport {
            name: "GPU Multisplit".to_string(),
            n,
            key_bytes,
            value_bytes,
            passes,
            traffic,
            total,
            sorting_rate: total.rate_for_bytes(input_bytes as f64),
        }
    }
}

impl Default for MultisplitRadixSort {
    fn default() -> Self {
        MultisplitRadixSort::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsd_radix::GpuLsdRadixSort;
    use workloads::{uniform_keys, EntropyLevel, KeyCodec};

    #[test]
    fn functional_sort_is_correct() {
        let ms = MultisplitRadixSort::paper();
        for level in [EntropyLevel::uniform(), EntropyLevel::with_and_count(4)] {
            let keys = level.generate_u32(30_000, 1);
            let expected = KeyCodec::std_sorted(&keys);
            let mut k = keys;
            ms.sort(&mut k);
            assert_eq!(k, expected);
        }
        let mut keys = uniform_keys::<u64>(10_000, 2);
        let expected = KeyCodec::std_sorted(&keys);
        ms.sort(&mut keys);
        assert_eq!(keys, expected);
    }

    #[test]
    fn values_follow_keys() {
        let ms = MultisplitRadixSort::paper();
        let keys = uniform_keys::<u32>(10_000, 3);
        let mut sorted = keys.clone();
        let mut vals: Vec<u32> = (0..10_000).collect();
        ms.sort_pairs(&mut sorted, &mut vals);
        assert!(workloads::pairs::verify_indexed_pair_sort(
            &keys, &sorted, &vals
        ));
    }

    #[test]
    fn figure_10_ordering_for_32_bit_keys() {
        // Appendix A: for 32-bit keys, Multisplit beats CUB 1.5.1 but loses
        // to CUB 1.6.4.
        let n = 500_000_000;
        let multisplit = MultisplitRadixSort::paper().simulate(n, 32, 0);
        let cub_old = GpuLsdRadixSort::cub_1_5_1().simulate(n, 32, 0);
        let cub_new = GpuLsdRadixSort::cub_1_6_4().simulate(n, 32, 0);
        assert!(
            multisplit.total < cub_old.total,
            "multisplit should beat CUB 1.5.1"
        );
        assert!(
            multisplit.total > cub_new.total,
            "CUB 1.6.4 should beat multisplit"
        );
    }

    #[test]
    fn figure_10_parity_for_pairs() {
        // For 32-bit/32-bit pairs Multisplit and CUB 1.6.4 are roughly on
        // par (within ~15 %).
        let n = 250_000_000;
        let multisplit = MultisplitRadixSort::paper().simulate(n, 32, 4);
        let cub_new = GpuLsdRadixSort::cub_1_6_4().simulate(n, 32, 4);
        let ratio = multisplit.total.secs() / cub_new.total.secs();
        assert!(ratio > 0.8 && ratio < 1.25, "ratio = {ratio}");
    }

    #[test]
    fn pass_count() {
        let ms = MultisplitRadixSort::paper();
        assert_eq!(ms.num_passes(32), 6);
        assert_eq!(ms.num_passes(64), 11);
    }
}
