//! GPU merge sort baseline (MGPU / Baxter, "Modern GPU").
//!
//! Comparison-based GPU merge sorts first sort fixed-size tiles in shared
//! memory and then merge pairs of runs in `⌈log2(n / tile)⌉` global passes;
//! every global pass reads and writes the whole input.  Merge sorts are
//! additionally comparison-bound, which is why the paper's Figure 6 shows
//! MGPU roughly a factor of four below the hybrid radix sort regardless of
//! the key distribution.

use crate::BaselineReport;
use gpu_sim::{DeviceSpec, KernelCost, KernelKind, MemoryTraffic, SimTime};
use workloads::SortKey;

/// The MGPU-style merge sort baseline.
#[derive(Debug, Clone)]
pub struct GpuMergeSort {
    /// Number of keys sorted per tile in shared memory before the global
    /// merge passes start.
    pub tile_size: usize,
    /// Efficiency of the merge passes' mixed read/write streams.
    pub merge_rw_efficiency: f64,
    /// Comparison throughput ceiling in keys per second for the whole
    /// device (merge sorts are compute-bound on top of their traffic).
    pub compare_keys_per_sec: f64,
    /// Fixed overhead per global pass.
    pub pass_fixed_overhead_s: f64,
    /// Device model.
    pub device: DeviceSpec,
}

impl GpuMergeSort {
    /// The configuration used for the Figure 6 comparison.
    pub fn mgpu() -> Self {
        GpuMergeSort {
            tile_size: 1_024,
            merge_rw_efficiency: 0.80,
            compare_keys_per_sec: 11e9,
            pass_fixed_overhead_s: 0.4e-3,
            device: DeviceSpec::titan_x_pascal(),
        }
    }

    /// Number of global merge passes for `n` keys.
    pub fn num_merge_passes(&self, n: u64) -> u32 {
        if n <= self.tile_size as u64 {
            return 0;
        }
        let runs = n.div_ceil(self.tile_size as u64);
        64 - (runs - 1).leading_zeros()
    }

    /// Sorts `keys` (functional tile sort + iterative merge passes) and
    /// returns the simulated report.
    pub fn sort<K: SortKey>(&self, keys: &mut [K]) -> BaselineReport {
        let mut values: Vec<()> = vec![(); keys.len()];
        self.sort_pairs(keys, &mut values)
    }

    /// Sorts keys and values together (stable merge).
    pub fn sort_pairs<K: SortKey, V: Copy + Default>(
        &self,
        keys: &mut [K],
        values: &mut [V],
    ) -> BaselineReport {
        assert_eq!(keys.len(), values.len());
        let n = keys.len();
        let mut src: Vec<(u64, V)> = keys
            .iter()
            .zip(values.iter())
            .map(|(k, &v)| (k.to_radix(), v))
            .collect();

        // Tile sort in "shared memory".
        for tile in src.chunks_mut(self.tile_size) {
            tile.sort_by_key(|(k, _)| *k);
        }

        // Iterative bottom-up merge passes.
        let mut dst: Vec<(u64, V)> = vec![(0, V::default()); n];
        let mut width = self.tile_size;
        while width < n {
            let mut start = 0;
            while start < n {
                let mid = (start + width).min(n);
                let end = (start + 2 * width).min(n);
                merge_runs(&src[start..mid], &src[mid..end], &mut dst[start..end]);
                start = end;
            }
            std::mem::swap(&mut src, &mut dst);
            width *= 2;
        }

        for (i, (k, v)) in src.iter().enumerate() {
            keys[i] = K::from_radix(*k);
            values[i] = *v;
        }

        let value_bytes = if std::mem::size_of::<V>() == 0 {
            0
        } else {
            std::mem::size_of::<V>() as u32
        };
        self.simulate(n as u64, K::BITS, value_bytes)
    }

    /// Analytical simulation for `n` keys.
    pub fn simulate(&self, n: u64, key_bits: u32, value_bytes: u32) -> BaselineReport {
        let key_bytes = (key_bits / 8).max(1);
        let record_bytes = key_bytes as u64 + value_bytes as u64;
        let total_bytes = n * record_bytes;
        let merge_passes = self.num_merge_passes(n);
        let mut traffic = MemoryTraffic::default();
        let mut total = SimTime::ZERO;

        // Tile-sort pass: one read + one write of everything.
        let mut tile = MemoryTraffic::default();
        tile.read(total_bytes).write(total_bytes).launch();
        let tile_t = KernelCost::memory_bound(KernelKind::LocalSort, tile)
            .with_efficiency(self.merge_rw_efficiency)
            .with_compute(n, self.compare_keys_per_sec)
            .evaluate(&self.device);
        traffic += tile;
        total += tile_t.total;

        for _ in 0..merge_passes {
            let mut pass = MemoryTraffic::default();
            pass.read(total_bytes).write(total_bytes).launch();
            let t = KernelCost::memory_bound(KernelKind::Copy, pass)
                .with_efficiency(self.merge_rw_efficiency)
                .with_compute(n, self.compare_keys_per_sec)
                .evaluate(&self.device);
            traffic += pass;
            total += t.total + SimTime::from_secs(self.pass_fixed_overhead_s);
        }

        BaselineReport {
            name: "MGPU merge sort".to_string(),
            n,
            key_bytes,
            value_bytes,
            passes: merge_passes + 1,
            traffic,
            total,
            sorting_rate: total.rate_for_bytes((n * record_bytes) as f64),
        }
    }
}

/// Merges two sorted runs into `out` (stable).
fn merge_runs<V: Copy>(a: &[(u64, V)], b: &[(u64, V)], out: &mut [(u64, V)]) {
    let (mut i, mut j, mut o) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i].0 <= b[j].0 {
            out[o] = a[i];
            i += 1;
        } else {
            out[o] = b[j];
            j += 1;
        }
        o += 1;
    }
    while i < a.len() {
        out[o] = a[i];
        i += 1;
        o += 1;
    }
    while j < b.len() {
        out[o] = b[j];
        j += 1;
        o += 1;
    }
}

impl Default for GpuMergeSort {
    fn default() -> Self {
        GpuMergeSort::mgpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{uniform_keys, EntropyLevel, KeyCodec};

    #[test]
    fn functional_merge_sort_is_correct() {
        let keys = uniform_keys::<u64>(50_000, 1);
        let expected = KeyCodec::std_sorted(&keys);
        let mut k = keys;
        let report = GpuMergeSort::mgpu().sort(&mut k);
        assert_eq!(k, expected);
        assert!(report.passes >= 6);
    }

    #[test]
    fn merge_sort_handles_skewed_and_tiny_inputs() {
        let ms = GpuMergeSort::mgpu();
        for n in [0usize, 1, 2, 1_023, 1_024, 1_025, 10_000] {
            let mut keys = EntropyLevel::with_and_count(3).generate_u32(n, 2);
            let expected = KeyCodec::std_sorted(&keys);
            ms.sort(&mut keys);
            assert_eq!(keys, expected, "n = {n}");
        }
    }

    #[test]
    fn values_follow_keys_and_merge_is_stable() {
        let ms = GpuMergeSort::mgpu();
        let mut keys: Vec<u32> = (0..20_000).map(|i| (i % 7) as u32).collect();
        let mut vals: Vec<u32> = (0..20_000).collect();
        ms.sort_pairs(&mut keys, &mut vals);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let mut last = [-1i64; 7];
        for (k, v) in keys.iter().zip(vals.iter()) {
            assert!(last[*k as usize] < *v as i64, "stability violated");
            last[*k as usize] = *v as i64;
        }
    }

    #[test]
    fn pass_count_grows_logarithmically() {
        let ms = GpuMergeSort::mgpu();
        assert_eq!(ms.num_merge_passes(1_024), 0);
        assert_eq!(ms.num_merge_passes(2_048), 1);
        assert_eq!(ms.num_merge_passes(4_096), 2);
        assert_eq!(ms.num_merge_passes(500_000_000), 19);
    }

    #[test]
    fn simulated_rate_is_far_below_the_radix_sorts() {
        // Figure 6a: MGPU sorts 2 GB of 32-bit keys at well under 10 GB/s.
        let report = GpuMergeSort::mgpu().simulate(500_000_000, 32, 0);
        let rate = report.sorting_rate.gb_per_s();
        assert!(rate > 2.0 && rate < 10.0, "rate = {rate}");
    }

    #[test]
    fn rate_is_roughly_distribution_and_size_independent_at_scale() {
        let ms = GpuMergeSort::mgpu();
        let a = ms.simulate(250_000_000, 64, 0).sorting_rate.gb_per_s();
        let b = ms.simulate(500_000_000, 64, 0).sorting_rate.gb_per_s();
        assert!((a - b).abs() / a < 0.15);
    }
}
