//! GPU LSD radix sort baselines (CUB 1.5.1 / 1.6.4, Thrust, Satish et al.).
//!
//! The state-of-the-art GPU radix sorts the paper compares against are
//! least-significant-digit-first radix sorts: every pass performs a *stable*
//! counting sort on `d` bits and therefore has to read the whole input twice
//! (once for the per-block histograms / upsweep, once for the downsweep) and
//! write it once.  The number of passes is `⌈k/d⌉`, with
//!
//! * `d = 5` for CUB 1.5.1 (the version evaluated in the paper's main body),
//! * `d = 7` for CUB 1.6.4 (the appendix's updated version),
//! * `d = 4` for Thrust and for Satish et al. (whose shared-memory binary
//!   split additionally makes it compute-bound).
//!
//! Because LSD radix sorting is stable and oblivious to the key
//! distribution, its cost is (almost) independent of skew — which is exactly
//! what Figure 6 shows for CUB.

use crate::BaselineReport;
use gpu_sim::{DeviceSpec, KernelCost, KernelKind, MemoryTraffic};
use workloads::SortKey;

/// Configuration of an LSD radix sort baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuLsdConfig {
    /// Display name.
    pub name: String,
    /// Bits per digit.
    pub digit_bits: u32,
    /// Efficiency of the downsweep's mixed read/write streams relative to
    /// the achievable read bandwidth.
    pub scatter_rw_efficiency: f64,
    /// Compute ceiling in keys per second for the whole device
    /// (`f64::INFINITY` for implementations that are purely bandwidth
    /// bound).
    pub compute_keys_per_sec: f64,
    /// Fixed overhead per pass in seconds.
    pub pass_fixed_overhead_s: f64,
}

impl GpuLsdConfig {
    /// CUB 1.5.1: five bits per pass (the paper's primary baseline).
    pub fn cub_1_5_1() -> Self {
        GpuLsdConfig {
            name: "CUB 1.5.1".to_string(),
            digit_bits: 5,
            scatter_rw_efficiency: 0.80,
            compute_keys_per_sec: f64::INFINITY,
            pass_fixed_overhead_s: 0.35e-3,
        }
    }

    /// CUB 1.6.4: up to seven bits per pass on Pascal-class devices
    /// (Appendix A), at the cost of lower occupancy.
    pub fn cub_1_6_4() -> Self {
        GpuLsdConfig {
            name: "CUB 1.6.4".to_string(),
            digit_bits: 7,
            scatter_rw_efficiency: 0.74,
            compute_keys_per_sec: f64::INFINITY,
            pass_fixed_overhead_s: 0.45e-3,
        }
    }

    /// Thrust's radix sort: four bits per pass and noticeably more
    /// per-pass overhead than CUB.
    pub fn thrust() -> Self {
        GpuLsdConfig {
            name: "Thrust".to_string(),
            digit_bits: 4,
            scatter_rw_efficiency: 0.75,
            compute_keys_per_sec: f64::INFINITY,
            pass_fixed_overhead_s: 0.6e-3,
        }
    }

    /// Satish et al.: four bits per pass with the shared-memory binary
    /// split, which makes the implementation compute-bound (Section 3).
    pub fn satish() -> Self {
        GpuLsdConfig {
            name: "Satish et al.".to_string(),
            digit_bits: 4,
            scatter_rw_efficiency: 0.75,
            compute_keys_per_sec: 14e9,
            pass_fixed_overhead_s: 0.6e-3,
        }
    }

    /// Number of passes needed for `key_bits`-bit keys.
    pub fn num_passes(&self, key_bits: u32) -> u32 {
        key_bits.div_ceil(self.digit_bits)
    }
}

/// An LSD radix sort baseline: functional CPU implementation plus the
/// analytical GPU cost model.
#[derive(Debug, Clone)]
pub struct GpuLsdRadixSort {
    /// Configuration (digit width, efficiencies).
    pub config: GpuLsdConfig,
    /// Device the simulated timings refer to.
    pub device: DeviceSpec,
}

impl GpuLsdRadixSort {
    /// Creates a baseline with the given configuration on the Titan X.
    pub fn new(config: GpuLsdConfig) -> Self {
        GpuLsdRadixSort {
            config,
            device: DeviceSpec::titan_x_pascal(),
        }
    }

    /// CUB 1.5.1 on the Titan X.
    pub fn cub_1_5_1() -> Self {
        GpuLsdRadixSort::new(GpuLsdConfig::cub_1_5_1())
    }

    /// CUB 1.6.4 on the Titan X.
    pub fn cub_1_6_4() -> Self {
        GpuLsdRadixSort::new(GpuLsdConfig::cub_1_6_4())
    }

    /// Thrust on the Titan X.
    pub fn thrust() -> Self {
        GpuLsdRadixSort::new(GpuLsdConfig::thrust())
    }

    /// Satish et al. on the Titan X.
    pub fn satish() -> Self {
        GpuLsdRadixSort::new(GpuLsdConfig::satish())
    }

    /// Uses a different device model.
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.device = device;
        self
    }

    /// Sorts `keys` in place (stable LSD radix sort on the radix
    /// representation) and returns the simulated report.
    pub fn sort<K: SortKey>(&self, keys: &mut [K]) -> BaselineReport {
        let mut values: Vec<()> = vec![(); keys.len()];
        self.sort_pairs(keys, &mut values)
    }

    /// Sorts keys and values together; the sort is stable.
    pub fn sort_pairs<K: SortKey, V: Copy + Default>(
        &self,
        keys: &mut [K],
        values: &mut [V],
    ) -> BaselineReport {
        assert_eq!(keys.len(), values.len());
        let n = keys.len();
        let d = self.config.digit_bits;
        let radix = 1usize << d;
        let passes = self.config.num_passes(K::BITS);

        let mut src_k: Vec<u64> = keys.iter().map(|k| k.to_radix()).collect();
        let mut src_v: Vec<V> = values.to_vec();
        let mut dst_k = vec![0u64; n];
        let mut dst_v = vec![V::default(); n];

        for pass in 0..passes {
            let shift = d * pass;
            let mask = (radix - 1) as u64;
            // Upsweep: histogram.
            let mut hist = vec![0usize; radix];
            for &k in &src_k {
                hist[((k >> shift) & mask) as usize] += 1;
            }
            // Exclusive prefix sum.
            let mut offsets = vec![0usize; radix];
            let mut acc = 0usize;
            for (o, &h) in offsets.iter_mut().zip(hist.iter()) {
                *o = acc;
                acc += h;
            }
            // Downsweep: stable scatter.
            for i in 0..n {
                let digit = ((src_k[i] >> shift) & mask) as usize;
                let pos = offsets[digit];
                offsets[digit] += 1;
                dst_k[pos] = src_k[i];
                dst_v[pos] = src_v[i];
            }
            std::mem::swap(&mut src_k, &mut dst_k);
            std::mem::swap(&mut src_v, &mut dst_v);
        }

        for (slot, bits) in keys.iter_mut().zip(src_k.iter()) {
            *slot = K::from_radix(*bits);
        }
        values.copy_from_slice(&src_v);

        let value_bytes = if std::mem::size_of::<V>() == 0 {
            0
        } else {
            std::mem::size_of::<V>() as u32
        };
        self.simulate(n as u64, K::BITS, value_bytes)
    }

    /// Analytical simulation for `n` keys of `key_bits` bits with
    /// `value_bytes`-byte values, without touching any data (the LSD sort's
    /// cost does not depend on the key distribution).
    pub fn simulate(&self, n: u64, key_bits: u32, value_bytes: u32) -> BaselineReport {
        let key_bytes = (key_bits / 8).max(1);
        let passes = self.config.num_passes(key_bits);
        let keys_total = n * key_bytes as u64;
        let values_total = n * value_bytes as u64;
        let mut traffic = MemoryTraffic::default();
        let mut total = gpu_sim::SimTime::ZERO;

        for _ in 0..passes {
            // Upsweep: read the keys once.
            let mut up = MemoryTraffic::default();
            up.read(keys_total).launch();
            let up_t = KernelCost::memory_bound(KernelKind::Histogram, up).evaluate(&self.device);
            // Downsweep: read keys (and values), write keys (and values),
            // stable shared-memory ranking limits the achievable bandwidth.
            let mut down = MemoryTraffic::default();
            down.read(keys_total + values_total)
                .write(keys_total + values_total)
                .launch();
            let down_t = KernelCost::memory_bound(KernelKind::Scatter, down)
                .with_efficiency(self.config.scatter_rw_efficiency)
                .with_compute(n, self.config.compute_keys_per_sec)
                .evaluate(&self.device);
            traffic += up;
            traffic += down;
            total += up_t.total + down_t.total;
            total += gpu_sim::SimTime::from_secs(self.config.pass_fixed_overhead_s);
        }

        let input_bytes = n * (key_bytes as u64 + value_bytes as u64);
        BaselineReport {
            name: self.config.name.clone(),
            n,
            key_bytes,
            value_bytes,
            passes,
            traffic,
            total,
            sorting_rate: total.rate_for_bytes(input_bytes as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{uniform_keys, EntropyLevel, KeyCodec};

    #[test]
    fn pass_counts_match_the_paper() {
        // Section 1: 64-bit keys with 5-bit digits -> 13 passes, i.e. the
        // input is read or written 39 times.
        assert_eq!(GpuLsdConfig::cub_1_5_1().num_passes(64), 13);
        assert_eq!(GpuLsdConfig::cub_1_5_1().num_passes(32), 7);
        assert_eq!(GpuLsdConfig::cub_1_6_4().num_passes(64), 10);
        assert_eq!(GpuLsdConfig::cub_1_6_4().num_passes(32), 5);
        assert_eq!(GpuLsdConfig::thrust().num_passes(64), 16);
        assert_eq!(GpuLsdConfig::satish().num_passes(32), 8);
    }

    #[test]
    fn functional_sort_is_correct_for_all_configs() {
        let keys = EntropyLevel::with_and_count(2).generate_u32(20_000, 1);
        let expected = KeyCodec::std_sorted(&keys);
        for baseline in [
            GpuLsdRadixSort::cub_1_5_1(),
            GpuLsdRadixSort::cub_1_6_4(),
            GpuLsdRadixSort::thrust(),
            GpuLsdRadixSort::satish(),
        ] {
            let mut k = keys.clone();
            let report = baseline.sort(&mut k);
            assert_eq!(k, expected, "{}", report.name);
            assert_eq!(report.passes, baseline.config.num_passes(32));
        }
    }

    #[test]
    fn functional_sort_handles_u64_and_signed_keys() {
        let cub = GpuLsdRadixSort::cub_1_5_1();
        let mut keys = uniform_keys::<u64>(10_000, 2);
        let expected = KeyCodec::std_sorted(&keys);
        cub.sort(&mut keys);
        assert_eq!(keys, expected);

        let mut ints: Vec<i32> = uniform_keys::<u32>(5_000, 3)
            .into_iter()
            .map(|k| k as i32)
            .collect();
        let expected = KeyCodec::std_sorted(&ints);
        cub.sort(&mut ints);
        assert_eq!(ints, expected);
    }

    #[test]
    fn lsd_sort_is_stable_for_pairs() {
        let cub = GpuLsdRadixSort::cub_1_5_1();
        // Many duplicate keys; stability means values of equal keys keep
        // their input order.
        let mut keys: Vec<u32> = (0..10_000).map(|i| (i % 16) as u32).collect();
        let mut values: Vec<u32> = (0..10_000).collect();
        cub.sort_pairs(&mut keys, &mut values);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        for w in values.windows(2) {
            let (a, b) = (w[0], w[1]);
            if keys[values.iter().position(|&v| v == a).unwrap()]
                == keys[values.iter().position(|&v| v == b).unwrap()]
            {
                // Same key group: original order must be preserved.
                // (Positions within the group are increasing.)
            }
        }
        // Check stability directly: within each key group values ascend.
        let mut last = [-1i64; 16];
        for (k, v) in keys.iter().zip(values.iter()) {
            assert!(last[*k as usize] < *v as i64);
            last[*k as usize] = *v as i64;
        }
    }

    #[test]
    fn simulated_cub_rate_matches_figure_6_ballpark() {
        // Figure 6a: CUB sorts 2 GB of 32-bit keys at roughly 15 GB/s.
        let cub = GpuLsdRadixSort::cub_1_5_1();
        let report = cub.simulate(500_000_000, 32, 0);
        let rate = report.sorting_rate.gb_per_s();
        assert!(rate > 11.0 && rate < 20.0, "rate = {rate}");
        // Figure 6c: CUB on 64-bit keys drops to roughly 8 GB/s.
        let report = cub.simulate(250_000_000, 64, 0);
        let rate = report.sorting_rate.gb_per_s();
        assert!(rate > 5.5 && rate < 11.0, "rate = {rate}");
    }

    #[test]
    fn cub_1_6_4_beats_1_5_1() {
        let old = GpuLsdRadixSort::cub_1_5_1().simulate(250_000_000, 64, 8);
        let new = GpuLsdRadixSort::cub_1_6_4().simulate(250_000_000, 64, 8);
        assert!(new.total < old.total);
        assert!(new.passes < old.passes);
    }

    #[test]
    fn satish_is_slower_than_thrust_due_to_compute_bound() {
        let thrust = GpuLsdRadixSort::thrust().simulate(500_000_000, 32, 0);
        let satish = GpuLsdRadixSort::satish().simulate(500_000_000, 32, 0);
        assert!(satish.total > thrust.total);
    }

    #[test]
    fn traffic_of_64bit_cub_is_39_passes_over_the_input() {
        let cub = GpuLsdRadixSort::cub_1_5_1();
        let report = cub.simulate(250_000_000, 64, 0);
        let passes_over = report.traffic.passes_over_input(report.input_bytes());
        assert!((passes_over - 39.0).abs() < 0.5, "passes = {passes_over}");
    }

    #[test]
    fn empty_input() {
        let mut keys: Vec<u32> = Vec::new();
        let report = GpuLsdRadixSort::thrust().sort(&mut keys);
        assert!(keys.is_empty());
        assert_eq!(report.n, 0);
    }
}
