//! Reference numbers reported in the literature.
//!
//! Figure 9 of the paper compares the heterogeneous sort against the
//! runtimes *reported* for PARADIS (Cho et al., PVLDB 2015) running 16
//! threads on a 32-core machine — the paper does not re-run PARADIS on its
//! own hardware.  This module encodes those reference series so the
//! experiment harness can regenerate the figure.  Values that the paper
//! states verbatim (64 GB: 19.8 s uniform / 25.4 s skewed; the 2.2×/4×,
//! 2.64×, 2.06×/1.53× speed-up anchors at 4, 16 and 64 GB) are used
//! directly; intermediate sizes are interpolated on the paper's stated
//! near-linear scaling.

use serde::{Deserialize, Serialize};

/// The two distributions Figure 9 evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReportedDistribution {
    /// Uniformly distributed 64-bit keys with 64-bit values.
    Uniform,
    /// Zipfian distribution with θ = 0.75.
    Zipf075,
}

/// Input sizes (in GB of key-value data) used by Figure 9.
pub const FIGURE_9_SIZES_GB: [u64; 5] = [4, 8, 16, 32, 64];

/// Runtime in seconds reported for PARADIS (16 threads, 32-core machine)
/// for an input of `size_gb` gigabytes of 64-bit/64-bit pairs.
///
/// Returns `None` for sizes outside the 4–64 GB range of Figure 9.
pub fn paradis_reported_seconds(size_gb: u64, dist: ReportedDistribution) -> Option<f64> {
    // Anchors derived from the paper's text:
    //  * 64 GB: 19.8 s (uniform) / 25.4 s (skewed)      [Section 6.2]
    //  * 16 GB skewed: 3.37 s × 2.64 ≈ 8.9 s            [Section 1]
    //  * 4 GB skewed: 0.895 s × 4 ≈ 3.6 s               [Section 6.2]
    //  * 4 GB uniform: ≈ 2.2× our ≈ 0.9 s ≈ 2.0 s       [Section 7]
    let table: &[(u64, f64)] = match dist {
        ReportedDistribution::Uniform => &[(4, 2.0), (8, 3.4), (16, 5.8), (32, 10.6), (64, 19.8)],
        ReportedDistribution::Zipf075 => &[(4, 3.6), (8, 5.5), (16, 8.9), (32, 15.0), (64, 25.4)],
    };
    if size_gb < table[0].0 || size_gb > table[table.len() - 1].0 {
        return None;
    }
    // Exact hit or log-linear interpolation between the bracketing anchors.
    for window in table.windows(2) {
        let (s0, t0) = window[0];
        let (s1, t1) = window[1];
        if size_gb == s0 {
            return Some(t0);
        }
        if size_gb == s1 {
            return Some(t1);
        }
        if size_gb > s0 && size_gb < s1 {
            let f = (size_gb as f64 - s0 as f64) / (s1 as f64 - s0 as f64);
            return Some(t0 + f * (t1 - t0));
        }
    }
    None
}

/// Sorting rates (GB/s) the paper reports for the hybrid radix sort at the
/// uniform end of Figure 6, used by the experiment harness to sanity-check
/// the shape of its reproduction (not to fabricate results).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperFigure6Anchors {
    /// Hybrid radix sort, 32-bit keys, uniform distribution (GB/s).
    pub hrs_keys32_uniform: f64,
    /// Hybrid radix sort, 64-bit keys, uniform distribution (GB/s).
    pub hrs_keys64_uniform: f64,
    /// Hybrid radix sort, 32+32 pairs, best case (GB/s).
    pub hrs_pairs32_peak: f64,
    /// Hybrid radix sort, 64+64 pairs, best case (GB/s).
    pub hrs_pairs64_peak: f64,
    /// Minimum speed-up over CUB for 32-bit keys.
    pub min_speedup_keys32: f64,
    /// Minimum speed-up over CUB for 64-bit keys / pairs.
    pub min_speedup_keys64: f64,
}

impl PaperFigure6Anchors {
    /// The anchors stated in Sections 1 and 6.1.
    pub fn paper() -> Self {
        PaperFigure6Anchors {
            hrs_keys32_uniform: 2.0 / 0.0626, // 2 GB in 62.6 ms ≈ 32 GB/s
            hrs_keys64_uniform: 2.0 / 0.0667, // 2 GB in 66.7 ms ≈ 30 GB/s
            hrs_pairs32_peak: 40.2,
            hrs_pairs64_peak: 35.7,
            min_speedup_keys32: 1.69,
            min_speedup_keys64: 1.58,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_verbatim_values() {
        assert_eq!(
            paradis_reported_seconds(64, ReportedDistribution::Uniform),
            Some(19.8)
        );
        assert_eq!(
            paradis_reported_seconds(64, ReportedDistribution::Zipf075),
            Some(25.4)
        );
        assert_eq!(
            paradis_reported_seconds(16, ReportedDistribution::Zipf075),
            Some(8.9)
        );
    }

    #[test]
    fn interpolation_is_monotone() {
        for dist in [ReportedDistribution::Uniform, ReportedDistribution::Zipf075] {
            let mut last = 0.0;
            for gb in 4..=64 {
                if let Some(t) = paradis_reported_seconds(gb, dist) {
                    assert!(t >= last, "{gb} GB");
                    last = t;
                }
            }
        }
    }

    #[test]
    fn skewed_is_always_slower_than_uniform() {
        for &gb in &FIGURE_9_SIZES_GB {
            let u = paradis_reported_seconds(gb, ReportedDistribution::Uniform).unwrap();
            let z = paradis_reported_seconds(gb, ReportedDistribution::Zipf075).unwrap();
            assert!(z > u, "{gb} GB: {z} !> {u}");
        }
    }

    #[test]
    fn out_of_range_sizes_return_none() {
        assert_eq!(
            paradis_reported_seconds(2, ReportedDistribution::Uniform),
            None
        );
        assert_eq!(
            paradis_reported_seconds(128, ReportedDistribution::Zipf075),
            None
        );
    }

    #[test]
    fn figure_6_anchors_match_the_abstract() {
        let a = PaperFigure6Anchors::paper();
        assert!((a.hrs_keys32_uniform - 31.9).abs() < 0.5);
        assert!((a.hrs_keys64_uniform - 30.0).abs() < 0.5);
        assert!(a.hrs_pairs32_peak > a.hrs_pairs64_peak);
        assert!(a.min_speedup_keys32 > 1.5 && a.min_speedup_keys64 > 1.5);
    }
}
