//! PARADIS-style parallel CPU radix sort.
//!
//! PARADIS (Cho et al., PVLDB 2015) is the parallel in-place CPU radix sort
//! the paper compares its heterogeneous sort against (Figure 9).  Its core
//! idea is an MSD counting sort whose permutation phase is parallelised
//! speculatively: every thread permutes the keys of the stripes assigned to
//! it, and a repair phase fixes the keys that ended up in a foreign bucket.
//!
//! This module provides a faithful *functional* multi-threaded CPU radix
//! sort in the same spirit (per-thread histograms, cooperative scatter, MSD
//! recursion with a small-bucket cutoff).  It is used
//!
//! * as a real, runnable CPU baseline for the heterogeneous-sort examples
//!   and benches, and
//! * together with [`crate::reference::paradis_reported_seconds`], which
//!   reproduces the runtimes reported for PARADIS on the 32-core machine the
//!   paper quotes, for regenerating Figure 9.

use std::thread;
use workloads::SortKey;

/// Configuration of the PARADIS-style CPU sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParadisConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Bits per digit of the MSD partitioning passes.
    pub digit_bits: u32,
    /// Buckets of at most this many keys are finished with a sequential
    /// comparison sort instead of further partitioning.
    pub small_cutoff: usize,
}

impl Default for ParadisConfig {
    fn default() -> Self {
        ParadisConfig {
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            digit_bits: 8,
            small_cutoff: 8_192,
        }
    }
}

/// The PARADIS-style parallel CPU radix sort.
#[derive(Debug, Clone, Default)]
pub struct ParadisSort {
    /// Configuration.
    pub config: ParadisConfig,
}

impl ParadisSort {
    /// Creates a sorter with the given configuration.
    pub fn new(config: ParadisConfig) -> Self {
        ParadisSort { config }
    }

    /// Creates a sorter with `threads` worker threads (the paper's
    /// comparison uses 16 threads on a 32-core machine).
    pub fn with_threads(threads: usize) -> Self {
        ParadisSort {
            config: ParadisConfig {
                threads: threads.max(1),
                ..ParadisConfig::default()
            },
        }
    }

    /// Sorts `keys` in place and returns the wall-clock duration.
    pub fn sort<K: SortKey>(&self, keys: &mut [K]) -> std::time::Duration {
        let start = std::time::Instant::now();
        if keys.len() > 1 {
            let mut aux = vec![K::default(); keys.len()];
            self.msd_partition(keys, &mut aux, 0);
        }
        start.elapsed()
    }

    /// One MSD partitioning level: parallel histogram, parallel scatter into
    /// `aux`, copy back, then recurse (sequentially over buckets, which is
    /// sufficient for the bucket counts produced by 8-bit digits).
    fn msd_partition<K: SortKey>(&self, keys: &mut [K], aux: &mut [K], level: u32) {
        let n = keys.len();
        let digit_bits = self.config.digit_bits;
        let num_levels = K::BITS.div_ceil(digit_bits);
        if n <= self.config.small_cutoff || level >= num_levels {
            keys.sort_unstable_by_key(|k| k.to_radix());
            return;
        }
        let radix = 1usize << digit_bits.min(K::BITS - digit_bits * level);
        let shift = K::BITS - digit_bits * level - digit_bits.min(K::BITS - digit_bits * level);
        let mask = (radix - 1) as u64;
        let threads = self.config.threads.min(n).max(1);
        let chunk = n.div_ceil(threads);

        // Parallel per-thread histograms.
        let mut thread_hists: Vec<Vec<usize>> = vec![vec![0usize; radix]; threads];
        thread::scope(|s| {
            for (t, hist) in thread_hists.iter_mut().enumerate() {
                let slice = &keys[(t * chunk).min(n)..((t + 1) * chunk).min(n)];
                s.spawn(move || {
                    for k in slice {
                        hist[((k.to_radix() >> shift) & mask) as usize] += 1;
                    }
                });
            }
        });

        // Per-thread starting offsets (stable within a digit value across
        // threads, like PARADIS' stripe assignment).
        let mut offsets: Vec<Vec<usize>> = vec![vec![0usize; radix]; threads];
        let mut bucket_starts = vec![0usize; radix + 1];
        {
            let mut acc = 0usize;
            for d in 0..radix {
                bucket_starts[d] = acc;
                for t in 0..threads {
                    offsets[t][d] = acc;
                    acc += thread_hists[t][d];
                }
            }
            bucket_starts[radix] = acc;
        }

        // Parallel scatter into the auxiliary buffer: each thread owns
        // disjoint destination ranges by construction, so the writes are
        // race-free (this replaces PARADIS' speculative permute + repair).
        let aux_ptr = SendPtr(aux.as_mut_ptr());
        thread::scope(|s| {
            for (t, offs) in offsets.into_iter().enumerate() {
                let slice = &keys[(t * chunk).min(n)..((t + 1) * chunk).min(n)];
                s.spawn(move || {
                    // Capture the whole wrapper (not just the raw pointer
                    // field) so the closure stays `Send`.
                    let out = aux_ptr;
                    let mut offs = offs;
                    for k in slice {
                        let d = ((k.to_radix() >> shift) & mask) as usize;
                        // SAFETY: each (thread, digit) pair owns the range
                        // [offsets[t][d], offsets[t][d] + hist[t][d]) and the
                        // ranges of different threads/digits are disjoint.
                        unsafe {
                            *out.0.add(offs[d]) = *k;
                        }
                        offs[d] += 1;
                    }
                });
            }
        });

        keys.copy_from_slice(aux);

        // Recurse into each bucket.
        for d in 0..radix {
            let (start, end) = (bucket_starts[d], bucket_starts[d + 1]);
            if end - start > 1 {
                self.msd_partition(&mut keys[start..end], &mut aux[start..end], level + 1);
            }
        }
    }
}

/// A raw pointer wrapper that may be sent to scoped worker threads; the
/// callers guarantee disjoint write ranges.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: the wrapper only moves the pointer value between threads; every
// dereference happens in `repair_cycles`, whose swap chains touch disjoint
// positions per thread, so no element is accessed from two threads.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above — shared references to the wrapper still only permit
// writes to per-thread disjoint ranges.
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{uniform_keys, EntropyLevel, KeyCodec, ZipfGenerator};

    #[test]
    fn sorts_uniform_keys_with_multiple_threads() {
        let keys = uniform_keys::<u64>(200_000, 1);
        let expected = KeyCodec::std_sorted(&keys);
        let mut k = keys;
        ParadisSort::with_threads(4).sort(&mut k);
        assert_eq!(k, expected);
    }

    #[test]
    fn sorts_skewed_and_zipfian_keys() {
        let sorter = ParadisSort::with_threads(3);
        let keys = EntropyLevel::with_and_count(5).generate_u64(100_000, 2);
        let expected = KeyCodec::std_sorted(&keys);
        let mut k = keys;
        sorter.sort(&mut k);
        assert_eq!(k, expected);

        let keys: Vec<u64> = ZipfGenerator::paper_keys(100_000, 3);
        let expected = KeyCodec::std_sorted(&keys);
        let mut k = keys;
        sorter.sort(&mut k);
        assert_eq!(k, expected);
    }

    #[test]
    fn single_thread_and_tiny_inputs() {
        let sorter = ParadisSort::with_threads(1);
        for n in [0usize, 1, 2, 100, 8_192, 8_193] {
            let mut keys = uniform_keys::<u32>(n, 5);
            let expected = KeyCodec::std_sorted(&keys);
            sorter.sort(&mut keys);
            assert_eq!(keys, expected, "n = {n}");
        }
    }

    #[test]
    fn sorts_signed_keys() {
        let mut keys: Vec<i64> = uniform_keys::<u64>(50_000, 7)
            .into_iter()
            .map(|k| k as i64)
            .collect();
        let expected = KeyCodec::std_sorted(&keys);
        ParadisSort::default().sort(&mut keys);
        assert_eq!(keys, expected);
    }

    #[test]
    fn constant_keys_terminate() {
        let mut keys = vec![42u64; 100_000];
        ParadisSort::with_threads(4).sort(&mut keys);
        assert!(keys.iter().all(|&k| k == 42));
    }

    #[test]
    fn returns_a_nonzero_duration() {
        let mut keys = uniform_keys::<u64>(100_000, 9);
        let d = ParadisSort::default().sort(&mut keys);
        assert!(d.as_nanos() > 0);
    }
}
