//! Shared helpers for the Criterion benchmark targets.
//!
//! Each benchmark file under `benches/` regenerates the measurements behind
//! one of the paper's tables or figures; this small library centralises the
//! workload sizes so that the benches stay quick enough for CI while still
//! exercising the real code paths.

/// Number of keys used by the functional benchmark workloads.
pub const BENCH_KEYS: usize = 1 << 20;

/// Number of keys used by the heavier heterogeneous-sort benchmarks.
pub const BENCH_HETERO_KEYS: usize = 1 << 19;

/// Seed used by all benchmark workloads.
pub const BENCH_SEED: u64 = 0xBEAC_0000_0000_0001;

/// A scaled sort configuration matching the benchmark workload size, so the
/// benchmarked runs exhibit the same bucket structure as the paper-scale
/// experiments.
pub fn bench_config_64() -> hrs_core::SortConfig {
    hrs_core::SortConfig::keys_64().scaled_for(BENCH_KEYS, 250_000_000)
}

/// The 32-bit variant of [`bench_config_64`].
pub fn bench_config_32() -> hrs_core::SortConfig {
    hrs_core::SortConfig::keys_32().scaled_for(BENCH_KEYS, 500_000_000)
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_configs_are_valid() {
        assert!(super::bench_config_64().validate().is_ok());
        assert!(super::bench_config_32().validate().is_ok());
        const { assert!(super::BENCH_KEYS >= 1_000) };
    }
}
