//! Criterion benchmark behind Figures 6/7: the functional hybrid radix sort
//! versus the functional LSD baselines, on uniform and skewed inputs.
//! (The paper-scale GB/s figures come from the cost model via the
//! `experiments` binaries; this benchmark measures the real CPU wall time of
//! the functional implementations.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrs_bench::{bench_config_64, BENCH_KEYS, BENCH_SEED};
use hrs_core::HybridRadixSorter;
use std::hint::black_box;
use std::time::Duration;
use workloads::{Distribution, EntropyLevel};

fn bench_sorters(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_on_gpu_functional");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    for (name, dist) in [
        ("uniform", Distribution::Uniform),
        (
            "entropy_25.96",
            Distribution::Entropy(EntropyLevel::with_and_count(1)),
        ),
        ("constant", Distribution::Constant),
    ] {
        let keys: Vec<u64> = dist.generate(BENCH_KEYS, BENCH_SEED);

        group.bench_with_input(
            BenchmarkId::new("hybrid_radix_sort", name),
            &keys,
            |b, keys| {
                let sorter = HybridRadixSorter::new(bench_config_64());
                b.iter(|| {
                    let mut k = keys.clone();
                    black_box(sorter.sort(&mut k));
                    black_box(k)
                });
            },
        );

        group.bench_with_input(BenchmarkId::new("cub_lsd_5bit", name), &keys, |b, keys| {
            let cub = baselines::GpuLsdRadixSort::cub_1_5_1();
            b.iter(|| {
                let mut k = keys.clone();
                black_box(cub.sort(&mut k));
                black_box(k)
            });
        });

        group.bench_with_input(
            BenchmarkId::new("std_sort_unstable", name),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut k = keys.clone();
                    k.sort_unstable();
                    black_box(k)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sorters);
criterion_main!(benches);
