//! Criterion benchmark for the execution backends: the same functional
//! hybrid radix sort under the sequential baseline and the real-thread
//! backend over worker counts, key-only and key-value — the
//! steady-state (arena-warm) wall-clock the perf trajectory tracks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrs_bench::{BENCH_KEYS, BENCH_SEED};
use hrs_core::{Executor, HybridRadixSorter};
use std::hint::black_box;
use std::time::Duration;
use workloads::uniform_keys;

fn backends() -> Vec<(String, Executor)> {
    let mut out = vec![("seq".to_string(), Executor::Sequential)];
    for workers in [2usize, 4, 8] {
        let exec = Executor::with_workers(workers);
        out.push((exec.label(), exec));
    }
    out
}

fn bench_backend_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_backend_u32_keys");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let keys = uniform_keys::<u32>(BENCH_KEYS, BENCH_SEED);
    for (label, exec) in backends() {
        let sorter = HybridRadixSorter::with_defaults().with_executor(exec);
        // Warm the arena outside the measurement.
        let mut warm = keys.clone();
        sorter.sort(&mut warm);
        group.bench_with_input(BenchmarkId::new("sort", &label), &keys, |b, keys| {
            b.iter(|| {
                let mut k = keys.clone();
                black_box(sorter.sort(&mut k));
            });
        });
    }
    group.finish();
}

fn bench_backend_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_backend_u32_pairs");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let keys = uniform_keys::<u32>(BENCH_KEYS, BENCH_SEED);
    for (label, exec) in backends() {
        let sorter = HybridRadixSorter::with_defaults().with_executor(exec);
        let mut warm_k = keys.clone();
        let mut warm_v: Vec<u32> = (0..BENCH_KEYS as u32).collect();
        sorter.sort_pairs(&mut warm_k, &mut warm_v);
        group.bench_with_input(BenchmarkId::new("sort_pairs", &label), &keys, |b, keys| {
            b.iter(|| {
                let mut k = keys.clone();
                let mut v: Vec<u32> = (0..BENCH_KEYS as u32).collect();
                black_box(sorter.sort_pairs(&mut k, &mut v));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backend_keys, bench_backend_pairs);
criterion_main!(benches);
