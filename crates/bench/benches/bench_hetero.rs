//! Criterion benchmark behind Figures 8 and 9: the CPU-side parallel
//! multiway merge for a growing number of runs (the component that limits
//! the end-to-end time on the six-core host) and the full heterogeneous
//! sort at functional scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero::{parallel_merge_sorted_runs, HeterogeneousSorter};
use hrs_bench::{bench_config_64, BENCH_HETERO_KEYS, BENCH_SEED};
use hrs_core::HybridRadixSorter;
use std::hint::black_box;
use std::time::Duration;
use workloads::Distribution;

fn bench_multiway_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_cpu_multiway_merge");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let keys: Vec<u64> = Distribution::Uniform.generate(BENCH_HETERO_KEYS * 4, BENCH_SEED);
    for runs in [2usize, 4, 8, 16] {
        let per = keys.len() / runs;
        let sorted_runs: Vec<Vec<u64>> = (0..runs)
            .map(|i| {
                let mut r = keys[i * per..(i + 1) * per].to_vec();
                r.sort_unstable();
                r
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("merge", format!("s={runs}")),
            &sorted_runs,
            |b, runs| {
                b.iter(|| {
                    let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
                    black_box(parallel_merge_sorted_runs(&refs, 6))
                });
            },
        );
    }
    group.finish();
}

fn bench_hetero_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_heterogeneous_sort_functional");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let keys: Vec<u64> =
        Distribution::paper_zipf(100_000).generate(BENCH_HETERO_KEYS * 2, BENCH_SEED);
    let sorter = HeterogeneousSorter::with_defaults()
        .with_gpu_sorter(HybridRadixSorter::new(bench_config_64()))
        .with_merge_threads(6);
    for s in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("end_to_end", format!("s={s}")),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut k = keys.clone();
                    black_box(sorter.sort(&mut k, s));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_multiway_merge, bench_hetero_sort);
criterion_main!(benches);
