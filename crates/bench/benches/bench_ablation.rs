//! Criterion benchmark behind Figures 11–14: the functional hybrid radix
//! sort with individual optimisations disabled, on a skewed input.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrs_bench::{bench_config_32, BENCH_KEYS, BENCH_SEED};
use hrs_core::{HybridRadixSorter, Optimizations};
use std::hint::black_box;
use std::time::Duration;
use workloads::{Distribution, EntropyLevel};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_14_ablation_functional");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let keys: Vec<u32> =
        Distribution::Entropy(EntropyLevel::with_and_count(2)).generate(BENCH_KEYS, BENCH_SEED);

    let mut variants = vec![("all optimisations on", Optimizations::all_on())];
    variants.extend(Optimizations::ablation_variants());
    for (name, opts) in variants {
        group.bench_with_input(BenchmarkId::new("sort", name), &keys, |b, keys| {
            let sorter = HybridRadixSorter::new(bench_config_32()).with_optimizations(opts);
            b.iter(|| {
                let mut k = keys.clone();
                black_box(sorter.sort(&mut k));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
