//! Criterion benchmark behind Figure 2: per-block histogram computation with
//! the atomics-only and thread-reduction strategies over distributions with
//! a varying number of distinct digit values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::HistogramStrategy;
use hrs_core::histogram::block_histogram;
use std::hint::black_box;
use std::time::Duration;
use workloads::SplitMix64;

fn keys_with_distinct_msb(n: usize, distinct: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(42);
    (0..n)
        .map(|_| {
            ((rng.next_bounded(distinct.max(1)) as u32) << 24) | (rng.next_u32() & 0x00FF_FFFF)
        })
        .collect()
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig02_histogram");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let n = 200_000;
    for distinct in [1u64, 2, 4, 16, 256] {
        let keys = keys_with_distinct_msb(n, distinct);
        for (name, strategy) in [
            ("atomics_only", HistogramStrategy::AtomicsOnly),
            ("thread_reduction", HistogramStrategy::ThreadReduction),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("q={distinct}")),
                &keys,
                |b, keys| {
                    b.iter(|| black_box(block_histogram(keys, 8, 0, 256, strategy, 18)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_histogram);
criterion_main!(benches);
