//! Criterion benchmark for the multi-GPU sharded sort engine: end-to-end
//! functional sorting time over the device count, plus the splitter
//! selection on its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrs_bench::{bench_config_64, BENCH_HETERO_KEYS, BENCH_SEED};
use hrs_core::HybridRadixSorter;
use multi_gpu::{compute_splitters, DevicePool, PartitionConfig, RecombineStrategy, ShardedSorter};
use std::hint::black_box;
use std::time::Duration;
use workloads::uniform_keys;

fn bench_sharded_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_gpu_sharded_sort");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let keys = uniform_keys::<u64>(BENCH_HETERO_KEYS, BENCH_SEED);
    for devices in [1usize, 2, 4, 8] {
        let sorter = ShardedSorter::new(DevicePool::titan_cluster(devices))
            .with_sorter(HybridRadixSorter::new(bench_config_64()));
        group.bench_with_input(
            BenchmarkId::new("sort", format!("p={devices}")),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let mut k = keys.clone();
                    black_box(sorter.sort(&mut k));
                });
            },
        );
    }
    group.finish();
}

/// The two recombination strategies head to head on an NVLink mesh: the
/// host p-way merge vs the peer all-to-all bucket exchange (where each
/// device merges only its own output range and the host concatenates).
fn bench_recombination_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_gpu_recombination");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let keys = uniform_keys::<u64>(BENCH_HETERO_KEYS, BENCH_SEED);
    for devices in [2usize, 4, 8] {
        for strategy in [
            RecombineStrategy::HostMerge,
            RecombineStrategy::PeerExchange,
        ] {
            let sorter = ShardedSorter::new(DevicePool::nvlink_mesh_cluster(devices))
                .with_sorter(HybridRadixSorter::new(bench_config_64()))
                .with_recombine_strategy(strategy);
            group.bench_with_input(
                BenchmarkId::new(strategy.label(), format!("p={devices}")),
                &keys,
                |b, keys| {
                    b.iter(|| {
                        let mut k = keys.clone();
                        black_box(sorter.sort(&mut k));
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_splitter_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_gpu_splitters");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let keys = uniform_keys::<u64>(BENCH_HETERO_KEYS, BENCH_SEED);
    for shards in [2usize, 8, 32] {
        let weights = vec![1.0; shards];
        group.bench_with_input(
            BenchmarkId::new("compute_splitters", format!("p={shards}")),
            &keys,
            |b, keys| {
                b.iter(|| {
                    black_box(compute_splitters(
                        keys,
                        &weights,
                        &PartitionConfig::default(),
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sharded_sort,
    bench_recombination_strategies,
    bench_splitter_selection
);
criterion_main!(benches);
