//! Criterion benchmark comparing all functional baseline implementations on
//! the same input (correctness-equivalent to Figure 6's comparison set, at
//! functional scale).

use criterion::{criterion_group, criterion_main, Criterion};
use hrs_bench::{BENCH_KEYS, BENCH_SEED};
use std::hint::black_box;
use std::time::Duration;
use workloads::Distribution;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines_functional");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let keys: Vec<u64> = Distribution::paper_zipf(1_000_000).generate(BENCH_KEYS, BENCH_SEED);

    group.bench_function("cub_1_5_1", |b| {
        let s = baselines::GpuLsdRadixSort::cub_1_5_1();
        b.iter(|| {
            let mut k = keys.clone();
            black_box(s.sort(&mut k));
        })
    });
    group.bench_function("cub_1_6_4", |b| {
        let s = baselines::GpuLsdRadixSort::cub_1_6_4();
        b.iter(|| {
            let mut k = keys.clone();
            black_box(s.sort(&mut k));
        })
    });
    group.bench_function("thrust", |b| {
        let s = baselines::GpuLsdRadixSort::thrust();
        b.iter(|| {
            let mut k = keys.clone();
            black_box(s.sort(&mut k));
        })
    });
    group.bench_function("mgpu_merge_sort", |b| {
        let s = baselines::GpuMergeSort::mgpu();
        b.iter(|| {
            let mut k = keys.clone();
            black_box(s.sort(&mut k));
        })
    });
    group.bench_function("multisplit", |b| {
        let s = baselines::MultisplitRadixSort::paper();
        b.iter(|| {
            let mut k = keys.clone();
            black_box(s.sort(&mut k));
        })
    });
    group.bench_function("paradis_cpu_6_threads", |b| {
        let s = baselines::ParadisSort::with_threads(6);
        b.iter(|| {
            let mut k = keys.clone();
            black_box(s.sort(&mut k));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
