//! Atomic metric primitives: counters, gauges and text values.
//!
//! Every metric handle is a cheap `Arc` clone around a single atomic cell;
//! cloning a handle shares the cell, so a worker thread and the snapshotting
//! thread observe the same value without any locking.  All updates use
//! relaxed ordering — metrics are monitoring data, not synchronisation
//! edges, and a snapshot that is one increment stale is fine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        // RELAXED: monitoring data, not a synchronisation edge; fetch_add
        // keeps the total exact and a momentarily stale reader is fine.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // RELAXED: see `add` — snapshots tolerate in-flight increments.
        self.0.load(Ordering::Relaxed)
    }

    /// Increments by one with release ordering (see [`Counter::add_release`]).
    pub fn inc_release(&self) {
        self.add_release(1);
    }

    /// Increments by `n` with release ordering: a reader that observes the
    /// new total via [`Counter::get_acquire`] also observes every write the
    /// incrementing thread performed before this call.  Use this when the
    /// counter doubles as a publication flag for other metrics (e.g. "the
    /// batch counter never exceeds the request counter").
    pub fn add_release(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Release);
    }

    /// Current value with acquire ordering; pairs with
    /// [`Counter::add_release`] to order reads of related metrics.
    pub fn get_acquire(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Whether this handle shares its cell with `other` (the registry's
    /// idempotence tests use this).
    pub fn same_as(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A settable integer gauge (queue depth, retained bytes, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        // RELAXED: last-writer-wins monitoring value; no other state is
        // inferred from it.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` exceeds the current value (running
    /// maximum).
    pub fn set_max(&self, v: u64) {
        // RELAXED: fetch_max only needs RMW atomicity to keep the running
        // maximum exact; ordering against other cells is irrelevant.
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // RELAXED: see `set` — a slightly stale reading is acceptable.
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable floating-point gauge (ratios, utilisations).  Stored as the
/// `f64` bit pattern in an atomic cell.
#[derive(Debug, Clone)]
pub struct FloatGauge(Arc<AtomicU64>);

impl Default for FloatGauge {
    fn default() -> Self {
        FloatGauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl FloatGauge {
    /// A fresh gauge at `0.0`.
    pub fn new() -> Self {
        FloatGauge::default()
    }

    /// Sets the gauge.  Non-finite values are recorded as `0.0` so
    /// snapshots always serialise to valid JSON.
    pub fn set(&self, v: f64) {
        let v = if v.is_finite() { v } else { 0.0 };
        // RELAXED: the bit pattern is written whole, so readers always see a
        // valid f64; monitoring data needs no cross-cell ordering.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // RELAXED: see `set`.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A settable text value (device names, backend labels).  Updates take a
/// short mutex — text metrics are set rarely (registration time), never on
/// hot paths.
#[derive(Debug, Clone, Default)]
pub struct TextMetric(Arc<Mutex<String>>);

impl TextMetric {
    /// A fresh, empty text metric.
    pub fn new() -> Self {
        TextMetric::default()
    }

    /// Replaces the text.
    pub fn set(&self, v: impl Into<String>) {
        *self.0.lock().unwrap_or_else(|p| p.into_inner()) = v.into();
    }

    /// Current text.
    pub fn get(&self) -> String {
        self.0.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_clones_share() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        assert!(c.same_as(&c2));
        assert!(!c.same_as(&Counter::new()));
    }

    #[test]
    fn gauge_sets_and_tracks_max() {
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set_max(3);
        assert_eq!(g.get(), 7, "set_max must not lower the gauge");
        g.set_max(11);
        assert_eq!(g.get(), 11);
        g.set(2);
        assert_eq!(g.get(), 2, "set is unconditional");
    }

    #[test]
    fn float_gauge_round_trips_and_sanitises() {
        let g = FloatGauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.875);
        assert_eq!(g.get(), 0.875);
        g.set(f64::NAN);
        assert_eq!(g.get(), 0.0, "non-finite values are sanitised");
        g.set(f64::INFINITY);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn text_metric_replaces() {
        let t = TextMetric::new();
        assert_eq!(t.get(), "");
        t.set("Titan X (Pascal)");
        assert_eq!(t.get(), "Titan X (Pascal)");
        let shared = t.clone();
        shared.set("GTX 980");
        assert_eq!(t.get(), "GTX 980");
    }

    #[test]
    fn metrics_are_shared_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4_000);
    }
}
