//! # telemetry — the workspace's unified observability layer
//!
//! Stehle & Jacobsen's argument is built on *measured* breakdowns (per-pass
//! memory traffic, transfer/compute overlap, crossover points), yet most of
//! this reproduction's numbers used to surface only post-hoc: a report after
//! a sort, service statistics only at shutdown.  This crate is the live
//! counterpart — a lock-light metrics surface every layer (core sorter,
//! multi-GPU engine, out-of-core pipeline, batch sort service) reports
//! into, inspectable at any moment without stopping anything:
//!
//! * [`metrics`] — atomic [`Counter`]s / [`Gauge`]s / [`FloatGauge`]s /
//!   [`TextMetric`]s.  Handles are cheap `Arc` clones; updates are single
//!   relaxed atomic operations.
//! * [`histogram`] — log₂-bucketed latency [`Histogram`]s with
//!   p50/p95/p99 extraction from an immutable [`HistogramSnapshot`].
//! * [`registry`] — the [`MetricsRegistry`]: metrics registered under
//!   hierarchical `/`-separated paths
//!   (`service/class/u64/queue_depth`), idempotently — re-registering a
//!   path returns the *same* underlying metric, which is what lets
//!   short-lived clones (service workers, device lanes) aggregate into one
//!   tree.
//! * [`mod@span`] — structured scoped timers: [`Inspector::span`] returns a
//!   [`SpanGuard`] that records its wall-clock duration into a pluggable
//!   [`SpanSink`] (a bounded [`RingSink`] by default) when dropped or
//!   [`finish`](SpanGuard::finish)ed.
//! * [`inspect`] — the Fuchsia-archivist-style snapshot surface: an
//!   [`Inspector`] is a shared hub (registry + span sink);
//!   [`Inspector::snapshot`] walks every registered path into an
//!   [`InspectNode`] tree that serialises to JSON.
//! * [`json`] — the hand-rolled JSON writer *and* parser for
//!   [`InspectNode`] (the workspace's vendored `serde` is a no-op shim), so
//!   snapshots round-trip and CI can assert on their structure.
//!
//! ## Quick start
//!
//! ```
//! use telemetry::Inspector;
//! use std::time::Duration;
//!
//! let inspector = Inspector::new();
//! let sorts = inspector.counter("core/sorts");
//! let latency = inspector.histogram("service/latency_ns");
//!
//! sorts.inc();
//! latency.record_duration(Duration::from_micros(250));
//! {
//!     let _span = inspector.span("core/pass"); // records on drop
//! }
//!
//! let snapshot = inspector.snapshot();
//! assert_eq!(snapshot.node("core").unwrap().uint("sorts"), Some(1));
//! let json = snapshot.to_json();
//! let parsed = telemetry::InspectNode::from_json(&json).unwrap();
//! assert_eq!(parsed, snapshot);
//! ```
//!
//! There is intentionally **no global singleton**: the workspace's tests run
//! concurrently in one process, so every [`Inspector`] is an explicit,
//! cheaply clonable value owned by the component it observes (the sharded
//! sorter shares its inspector with the sort service built on top of it).

#![warn(missing_docs)]

pub mod histogram;
pub mod inspect;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod span;

pub use histogram::{Histogram, HistogramSnapshot};
pub use inspect::{InspectNode, InspectValue, Inspector};
pub use json::JsonError;
pub use metrics::{Counter, FloatGauge, Gauge, TextMetric};
pub use registry::{MetricKind, MetricTypeError, MetricsRegistry};
pub use span::{NullSink, RingSink, SpanGuard, SpanRecord, SpanSink};
