//! Hand-rolled JSON writer and parser for [`InspectNode`] trees.
//!
//! The workspace's vendored `serde` is a no-op shim (its derives expand to
//! nothing), so snapshots serialise through this module instead.  The
//! format is fixed and small:
//!
//! ```json
//! {"name": "root", "properties": {"requests": 7}, "children": [...]}
//! ```
//!
//! Numbers keep their kind through a round trip: values written with a
//! `.` or exponent parse back as [`InspectValue::Double`], a leading `-`
//! yields an [`InspectValue::Int`], anything else an
//! [`InspectValue::UInt`].  The parser is a plain recursive-descent walk
//! over the byte string — enough for CI to load a snapshot artifact and
//! assert on its structure without any external dependency.

use crate::inspect::{InspectNode, InspectValue};

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------- writing

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    let v = if v.is_finite() { v } else { 0.0 };
    let s = format!("{v}");
    out.push_str(&s);
    // Keep the value recognisably floating-point so it parses back as a
    // Double.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_value(value: &InspectValue, out: &mut String) {
    match value {
        InspectValue::UInt(v) => out.push_str(&v.to_string()),
        InspectValue::Int(v) => out.push_str(&v.to_string()),
        InspectValue::Double(v) => write_f64(*v, out),
        InspectValue::Text(v) => escape_into(v, out),
    }
}

/// Serialises a node tree into `out`.
pub fn write_node(node: &InspectNode, out: &mut String) {
    out.push_str("{\"name\": ");
    escape_into(&node.name, out);
    out.push_str(", \"properties\": {");
    for (i, (key, value)) in node.properties.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        escape_into(key, out);
        out.push_str(": ");
        write_value(value, out);
    }
    out.push_str("}, \"children\": [");
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_node(child, out);
    }
    out.push_str("]}");
}

/// Serialises a node tree to a JSON string.
pub fn node_to_json(node: &InspectNode) -> String {
    let mut out = String::new();
    write_node(node, &mut out);
    out
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            pos: self.pos,
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", byte as char))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return self.err("lone high surrogate");
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return self.err("invalid UTF-8 byte"),
                    };
                    let end = start + len;
                    let Some(slice) = self.bytes.get(start..end) else {
                        return self.err("truncated UTF-8 sequence");
                    };
                    match std::str::from_utf8(slice) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8 sequence"),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let Some(slice) = self.bytes.get(self.pos..self.pos + 4) else {
            return self.err("truncated \\u escape");
        };
        let Ok(s) = std::str::from_utf8(slice) else {
            return self.err("invalid \\u escape");
        };
        match u32::from_str_radix(s, 16) {
            Ok(v) => {
                self.pos += 4;
                Ok(v)
            }
            Err(_) => self.err("invalid \\u escape"),
        }
    }

    fn parse_value(&mut self) -> Result<InspectValue, JsonError> {
        if self.peek() == Some(b'"') {
            return Ok(InspectValue::Text(self.parse_string()?));
        }
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a number or string");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        if text.contains(['.', 'e', 'E']) {
            match text.parse::<f64>() {
                Ok(v) => Ok(InspectValue::Double(v)),
                Err(_) => self.err(format!("invalid float '{text}'")),
            }
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Ok(InspectValue::Int(v)),
                Err(_) => self.err(format!("invalid integer '{text}'")),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(InspectValue::UInt(v)),
                Err(_) => self.err(format!("invalid integer '{text}'")),
            }
        }
    }

    fn parse_node(&mut self) -> Result<InspectNode, JsonError> {
        self.expect(b'{')?;
        let mut node = InspectNode::new("");
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(node);
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            match key.as_str() {
                "name" => node.name = self.parse_string()?,
                "properties" => {
                    self.expect(b'{')?;
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                    } else {
                        loop {
                            let prop = self.parse_string()?;
                            self.expect(b':')?;
                            let value = self.parse_value()?;
                            node.properties.push((prop, value));
                            match self.peek() {
                                Some(b',') => self.pos += 1,
                                Some(b'}') => {
                                    self.pos += 1;
                                    break;
                                }
                                _ => return self.err("expected ',' or '}' in properties"),
                            }
                        }
                    }
                }
                "children" => {
                    self.expect(b'[')?;
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                    } else {
                        loop {
                            node.children.push(self.parse_node()?);
                            match self.peek() {
                                Some(b',') => self.pos += 1,
                                Some(b']') => {
                                    self.pos += 1;
                                    break;
                                }
                                _ => return self.err("expected ',' or ']' in children"),
                            }
                        }
                    }
                }
                other => return self.err(format!("unknown node key '{other}'")),
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(node);
                }
                _ => return self.err("expected ',' or '}' in node"),
            }
        }
    }
}

/// Parses a node tree from JSON produced by [`node_to_json`].
pub fn node_from_json(input: &str) -> Result<InspectNode, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let node = parser.parse_node()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing data after node");
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InspectNode {
        let mut root = InspectNode::new("root");
        root.set("requests", InspectValue::UInt(7));
        root.set("delta", InspectValue::Int(-3));
        root.set("ratio", InspectValue::Double(0.875));
        root.set("label", InspectValue::Text("u64 \"pairs\"\nλ".into()));
        let child = root.child_mut("service");
        child.set("queue_depth", InspectValue::UInt(0));
        child.child_mut("class");
        root
    }

    #[test]
    fn round_trip_preserves_structure_and_value_kinds() {
        let node = sample();
        let json = node_to_json(&node);
        let parsed = node_from_json(&json).expect("round trip");
        assert_eq!(parsed, node);
    }

    #[test]
    fn doubles_stay_doubles() {
        let mut node = InspectNode::new("n");
        node.set("whole", InspectValue::Double(2.0));
        let json = node_to_json(&node);
        assert!(json.contains("2.0"), "whole doubles keep a decimal point");
        let parsed = node_from_json(&json).unwrap();
        assert_eq!(parsed.double("whole"), Some(2.0));
    }

    #[test]
    fn non_finite_doubles_are_sanitised() {
        let mut node = InspectNode::new("n");
        node.set("bad", InspectValue::Double(f64::NAN));
        let parsed = node_from_json(&node_to_json(&node)).unwrap();
        assert_eq!(parsed.double("bad"), Some(0.0));
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let json =
            "{ \"name\" : \"r\\u00e9\" ,\n \"properties\" : { \"k\" : -4 } , \"children\" : [ ] }";
        let node = node_from_json(json).unwrap();
        assert_eq!(node.name, "ré");
        assert_eq!(node.properties[0], ("k".to_string(), InspectValue::Int(-4)));
    }

    #[test]
    fn errors_carry_position() {
        let err = node_from_json("{\"name\": }").unwrap_err();
        assert!(err.pos > 0);
        assert!(node_from_json("").is_err());
        assert!(node_from_json("{\"bogus\": 1}").is_err());
        assert!(node_from_json("{} trailing").is_err());
    }
}
