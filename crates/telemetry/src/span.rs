//! Structured spans: cheap scoped wall-clock timers with pluggable sinks.
//!
//! A [`SpanGuard`] starts a timer when created and reports a
//! [`SpanRecord`] to its [`SpanSink`] either when explicitly
//! [`finish`](SpanGuard::finish)ed (which also hands the measured duration
//! back to the caller — the engine uses this to keep filling its report
//! structs) or when dropped.  The default sink is a bounded [`RingSink`];
//! [`NullSink`] discards everything for zero-overhead opt-out.

use crate::histogram::Histogram;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One completed span: a name and how long it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name; `/`-separated names group hierarchically in snapshots
    /// (e.g. `multi_gpu/partition`).
    pub name: String,
    /// Measured wall-clock duration.
    pub duration: Duration,
}

/// Destination for completed spans.
pub trait SpanSink: Send + Sync {
    /// Accepts one completed span.
    fn record(&self, record: SpanRecord);

    /// The retained spans, oldest first.  Sinks that do not retain
    /// anything return an empty vector (the default).
    fn recent(&self) -> Vec<SpanRecord> {
        Vec::new()
    }
}

/// A sink that discards every span.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl SpanSink for NullSink {
    fn record(&self, _record: SpanRecord) {}
}

/// A bounded ring buffer of the most recent spans.  When full, the oldest
/// span is evicted; [`total`](RingSink::total) still counts every span
/// ever recorded.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    recent: Mutex<VecDeque<SpanRecord>>,
    total: AtomicU64,
}

impl RingSink {
    /// A ring retaining at most `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            recent: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            total: AtomicU64::new(0),
        }
    }

    /// How many spans were ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        // RELAXED: monitoring read; may trail concurrent `record` calls.
        self.total.load(Ordering::Relaxed)
    }
}

impl SpanSink for RingSink {
    fn record(&self, record: SpanRecord) {
        // RELAXED: the lifetime total is a statistic; the ring itself is
        // protected by the mutex below, so no publication edge is needed.
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut q = self.recent.lock().unwrap_or_else(|p| p.into_inner());
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(record);
    }

    fn recent(&self) -> Vec<SpanRecord> {
        self.recent
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

/// A running scoped timer.  Created by [`Inspector::span`] or
/// [`Inspector::span_with`]; records into its sink on drop, or on
/// [`finish`](SpanGuard::finish) when the caller also wants the duration.
///
/// [`Inspector::span`]: crate::Inspector::span
/// [`Inspector::span_with`]: crate::Inspector::span_with
#[must_use = "a span measures the scope it lives in; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    name: String,
    start: Instant,
    sink: Arc<dyn SpanSink>,
    histogram: Option<Histogram>,
    finished: bool,
}

impl SpanGuard {
    pub(crate) fn start(
        name: impl Into<String>,
        sink: Arc<dyn SpanSink>,
        histogram: Option<Histogram>,
    ) -> Self {
        SpanGuard {
            name: name.into(),
            start: Instant::now(),
            sink,
            histogram,
            finished: false,
        }
    }

    /// Elapsed time so far, without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    fn emit(&self, duration: Duration) {
        if let Some(h) = &self.histogram {
            h.record_duration(duration);
        }
        self.sink.record(SpanRecord {
            name: self.name.clone(),
            duration,
        });
    }

    /// Ends the span now and returns the measured duration (so callers
    /// that previously kept an ad-hoc `Instant` for a report field keep
    /// the value).
    pub fn finish(mut self) -> Duration {
        let duration = self.start.elapsed();
        self.emit(duration);
        self.finished = true;
        duration
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.finished {
            let duration = self.start.elapsed();
            self.emit(duration);
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.name)
            .field("elapsed", &self.elapsed())
            .finish()
    }
}

/// Opens a span on an [`Inspector`](crate::Inspector); sugar for
/// [`Inspector::span`](crate::Inspector::span).
///
/// ```
/// # let inspector = telemetry::Inspector::new();
/// let _guard = telemetry::span!(inspector, "core/pass");
/// ```
#[macro_export]
macro_rules! span {
    ($inspector:expr, $name:expr) => {
        $inspector.span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let sink = Arc::new(RingSink::new(8));
        {
            let _g = SpanGuard::start("scope", sink.clone(), None);
        }
        let spans = sink.recent();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "scope");
    }

    #[test]
    fn finish_records_exactly_once_and_returns_duration() {
        let sink = Arc::new(RingSink::new(8));
        let g = SpanGuard::start("once", sink.clone(), None);
        let d = g.finish();
        assert_eq!(sink.total(), 1, "finish must suppress the drop record");
        assert_eq!(sink.recent()[0].duration, d);
    }

    #[test]
    fn span_with_histogram_records_into_it() {
        let sink = Arc::new(RingSink::new(8));
        let h = Histogram::new();
        SpanGuard::start("timed", sink.clone(), Some(h.clone())).finish();
        assert_eq!(h.snapshot().count, 1);
        assert_eq!(sink.total(), 1);
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_total() {
        let sink = RingSink::new(2);
        for i in 0..5 {
            sink.record(SpanRecord {
                name: format!("s{i}"),
                duration: Duration::from_nanos(i),
            });
        }
        assert_eq!(sink.total(), 5);
        let recent = sink.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].name, "s3");
        assert_eq!(recent[1].name, "s4");
    }

    #[test]
    fn null_sink_retains_nothing() {
        let sink = NullSink;
        sink.record(SpanRecord {
            name: "x".into(),
            duration: Duration::ZERO,
        });
        assert!(sink.recent().is_empty());
    }
}
