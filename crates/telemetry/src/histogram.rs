//! Log₂-bucketed latency histograms with percentile extraction.
//!
//! A [`Histogram`] has 65 fixed buckets: bucket 0 holds the value `0`,
//! bucket `b ≥ 1` holds values whose bit length is `b`, i.e. the range
//! `[2^(b-1), 2^b - 1]`.  Bucketing a sample is therefore one
//! `leading_zeros` plus one relaxed atomic increment — cheap enough to sit
//! on every request-outcome path of the sort service.  The top bucket
//! saturates: any `u64` value fits, so nothing is ever dropped.
//!
//! Percentiles come from an immutable [`HistogramSnapshot`]: the p-th
//! percentile rank is located in the cumulative bucket counts and
//! interpolated linearly inside its bucket's range, then clamped to the
//! largest recorded sample (so a single-sample histogram never reports a
//! percentile above the one value it saw).

use crate::metrics::Counter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of buckets: the zero bucket plus one per possible bit length.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index of a value: `0` for zero, otherwise the value's bit length.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive `[low, high]` range of values a bucket covers.
pub fn bucket_range(bucket: usize) -> (u64, u64) {
    match bucket {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        b => (1u64 << (b - 1), (1u64 << b) - 1),
    }
}

struct Inner {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A concurrent log₂-bucketed histogram.  Clones share the same cells.
#[derive(Clone)]
pub struct Histogram(Arc<Inner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(Inner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let inner = &self.0;
        // RELAXED: each cell only needs RMW atomicity; snapshots tolerate
        // the cells lagging each other by in-flight increments (see
        // `HistogramSnapshot`'s docs), so no inter-cell edge is required.
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // RELAXED: as above.
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        // RELAXED: as above.
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX` — about
    /// 584 years, comfortably inside the top bucket).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        // RELAXED: monitoring read; may trail concurrent `record` calls.
        self.0.count.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current state for percentile extraction.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        // RELAXED: the snapshot is documented as per-cell consistent only;
        // percentile extraction clamps ranks to the observed totals, so
        // cells caught mid-update cannot produce out-of-range results.
        HistogramSnapshot {
            buckets: std::array::from_fn(|b| inner.buckets[b].load(Ordering::Relaxed)),
            // RELAXED: as above.
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            // RELAXED: as above.
            max: inner.max.load(Ordering::Relaxed),
        }
    }

    /// Whether this handle shares its cells with `other`.
    pub fn same_as(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50())
            .field("p99", &s.p99())
            .field("max", &s.max)
            .finish()
    }
}

/// An immutable histogram state.  Snapshots of *concurrently updated*
/// histograms are internally consistent per cell but the per-bucket counts
/// may momentarily lag `count` by in-flight increments; percentile
/// extraction tolerates that by clamping ranks to the observed totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_range`]).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (wrapping on overflow).
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Bucket-wise merge of several snapshots (used to aggregate per-class
    /// latency histograms into one service-wide distribution).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a HistogramSnapshot>) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for p in parts {
            for (o, v) in out.buckets.iter_mut().zip(p.buckets.iter()) {
                *o += v;
            }
            out.count += p.count;
            out.sum = out.sum.wrapping_add(p.sum);
            out.max = out.max.max(p.max);
        }
        out
    }

    /// Mean sample value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (`p` in `0.0..=100.0`), interpolated linearly
    /// inside the target bucket's range and clamped to the largest recorded
    /// sample.  Returns `0` for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let in_buckets: u64 = self.buckets.iter().sum();
        if in_buckets == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        if p >= 100.0 {
            return self.max;
        }
        // 1-based rank of the target sample among the bucketed ones.
        let rank = ((p / 100.0 * in_buckets as f64).ceil() as u64).clamp(1, in_buckets);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if rank <= seen + n {
                let (low, high) = bucket_range(b);
                // Linear interpolation at the midpoint of the sample's
                // sub-slot inside the bucket.
                let pos = (rank - seen) as f64 - 0.5;
                let width = (high - low) as f64 + 1.0;
                let v = low as f64 + width * pos / n as f64;
                return (v as u64).clamp(low, high).min(self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

/// Pairs a histogram with a counter of dropped-on-the-floor samples — not
/// used yet, reserved for sinks that shed load.  (Kept private until a
/// consumer exists.)
#[allow(dead_code)]
struct SheddingHistogram {
    histogram: Histogram,
    dropped: Counter,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // The zero bucket holds only zero.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_range(0), (0, 0));
        // Bucket b covers [2^(b-1), 2^b - 1]: check every boundary.
        for b in 1..=63usize {
            let (low, high) = bucket_range(b);
            assert_eq!(low, 1u64 << (b - 1));
            assert_eq!(high, (1u64 << b) - 1);
            assert_eq!(bucket_index(low), b, "low edge of bucket {b}");
            assert_eq!(bucket_index(high), b, "high edge of bucket {b}");
            assert_eq!(bucket_index(high) + 1, bucket_index(high + 1));
        }
        // The top bucket saturates at u64::MAX.
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_range(64), (1u64 << 63, u64::MAX));
    }

    #[test]
    fn empty_histogram_reports_zero_everywhere() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.0), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn single_sample_percentiles_return_that_sample_region() {
        let h = Histogram::new();
        h.record(1_000);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 1_000);
        assert_eq!(s.mean(), 1_000.0);
        // Every percentile lands in the sample's bucket, clamped to the
        // sample itself at the top.
        let (low, _) = bucket_range(bucket_index(1_000));
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            let v = s.percentile(p);
            assert!(v >= low && v <= 1_000, "p{p} = {v}");
        }
        assert_eq!(s.percentile(100.0), 1_000);
    }

    #[test]
    fn saturating_samples_land_in_the_top_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record_duration(Duration::from_secs(u64::MAX)); // > u64::MAX ns
        let s = h.snapshot();
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.max, u64::MAX);
        assert!(s.p99() >= 1u64 << 63, "p99 stays in the top bucket");
        assert_eq!(s.percentile(100.0), u64::MAX);
    }

    #[test]
    fn percentiles_follow_the_distribution() {
        let h = Histogram::new();
        // 90 fast samples around 1 µs, 10 slow around 1 ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let p50 = s.p50();
        let p99 = s.p99();
        let (fast_low, fast_high) = bucket_range(bucket_index(1_000));
        let (slow_low, _) = bucket_range(bucket_index(1_000_000));
        assert!(p50 >= fast_low && p50 <= fast_high, "p50 = {p50}");
        assert!(p99 >= slow_low && p99 <= 1_000_000, "p99 = {p99}");
        assert!(p99 > p50);
        assert_eq!(s.percentile(100.0), 1_000_000);
    }

    #[test]
    fn duration_recording_uses_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        let s = h.snapshot();
        assert_eq!(s.sum, 3_000);
        assert_eq!(s.buckets[bucket_index(3_000)], 1);
    }

    #[test]
    fn merged_snapshots_aggregate() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(20);
        b.record(1 << 40);
        let m = HistogramSnapshot::merged([&a.snapshot(), &b.snapshot()]);
        assert_eq!(m.count, 3);
        assert_eq!(m.max, 1 << 40);
        assert_eq!(m.sum, 30 + (1 << 40));
        assert_eq!(m.buckets.iter().sum::<u64>(), 3);
        assert_eq!(HistogramSnapshot::merged([]).count, 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1_000 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 4_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4_000);
    }
}
