//! The metrics registry: hierarchical paths, idempotent registration.
//!
//! Metrics live under `/`-separated paths such as
//! `service/class/u64_pairs/queue_depth`.  Registration is **idempotent**:
//! asking for `counter("core/sorts")` twice returns two handles to the
//! *same* atomic cell.  That property is what lets short-lived clones — a
//! service worker thread, a per-device sorter lane rebuilt after a pool
//! swap — all aggregate into one tree without any coordination beyond the
//! path string.
//!
//! Registration takes a mutex (a `BTreeMap` lookup); updates through the
//! returned handles are lock-free.  Components therefore register once at
//! construction time and keep the handles.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::inspect::{InspectNode, InspectValue};
use crate::metrics::{Counter, FloatGauge, Gauge, TextMetric};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Float(FloatGauge),
    Histogram(Histogram),
    Text(TextMetric),
}

impl Metric {
    fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Float(_) => MetricKind::FloatGauge,
            Metric::Histogram(_) => MetricKind::Histogram,
            Metric::Text(_) => MetricKind::Text,
        }
    }
}

/// The kind of metric registered at a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically increasing [`Counter`].
    Counter,
    /// An integer [`Gauge`].
    Gauge,
    /// A [`FloatGauge`].
    FloatGauge,
    /// A log₂-bucketed [`Histogram`].
    Histogram,
    /// A [`TextMetric`].
    Text,
}

impl MetricKind {
    /// Human-readable label, as used in error messages.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::FloatGauge => "float gauge",
            MetricKind::Histogram => "histogram",
            MetricKind::Text => "text metric",
        }
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A path was re-registered with a different metric kind.
///
/// Returned by the `try_*` registration methods; the infallible wrappers
/// panic with this error instead of silently handing back a detached
/// handle, because an unshared metric is a monitoring bug that otherwise
/// only shows up as mysteriously frozen numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricTypeError {
    /// The contested path.
    pub path: String,
    /// The kind already registered at the path.
    pub existing: MetricKind,
    /// The kind the caller asked for.
    pub requested: MetricKind,
}

impl std::fmt::Display for MetricTypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "metric path `{}` is already registered as a {}; cannot re-register it as a {}",
            self.path, self.existing, self.requested
        )
    }
}

impl std::error::Error for MetricTypeError {}

fn type_error(path: &str, existing: MetricKind, requested: MetricKind) -> MetricTypeError {
    MetricTypeError {
        path: path.to_string(),
        existing,
        requested,
    }
}

/// A concurrent map from hierarchical path to metric.
///
/// Paths use `/` as the separator; the final segment becomes a property
/// name in snapshots (histograms become a whole node, since they carry
/// several values).  Registering a path that already holds a metric of a
/// *different* kind is an error: the `try_*` methods return a
/// [`MetricTypeError`] naming the path and both kinds, and the infallible
/// convenience methods panic with it.  (Earlier versions silently handed
/// back a detached, unshared handle — a monitoring bug that surfaced only
/// as frozen numbers.)
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("paths", &self.paths().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn with_map<R>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> R) -> R {
        f(&mut self.metrics.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Registers (or retrieves) a counter at `path`; fails if the path
    /// already holds a different kind of metric.
    pub fn try_counter(&self, path: &str) -> Result<Counter, MetricTypeError> {
        self.with_map(|m| {
            match m
                .entry(path.to_string())
                .or_insert_with(|| Metric::Counter(Counter::new()))
            {
                Metric::Counter(c) => Ok(c.clone()),
                other => Err(type_error(path, other.kind(), MetricKind::Counter)),
            }
        })
    }

    /// Registers (or retrieves) an integer gauge at `path`; fails if the
    /// path already holds a different kind of metric.
    pub fn try_gauge(&self, path: &str) -> Result<Gauge, MetricTypeError> {
        self.with_map(|m| {
            match m
                .entry(path.to_string())
                .or_insert_with(|| Metric::Gauge(Gauge::new()))
            {
                Metric::Gauge(g) => Ok(g.clone()),
                other => Err(type_error(path, other.kind(), MetricKind::Gauge)),
            }
        })
    }

    /// Registers (or retrieves) a floating-point gauge at `path`; fails if
    /// the path already holds a different kind of metric.
    pub fn try_float_gauge(&self, path: &str) -> Result<FloatGauge, MetricTypeError> {
        self.with_map(|m| {
            match m
                .entry(path.to_string())
                .or_insert_with(|| Metric::Float(FloatGauge::new()))
            {
                Metric::Float(g) => Ok(g.clone()),
                other => Err(type_error(path, other.kind(), MetricKind::FloatGauge)),
            }
        })
    }

    /// Registers (or retrieves) a histogram at `path`; fails if the path
    /// already holds a different kind of metric.
    pub fn try_histogram(&self, path: &str) -> Result<Histogram, MetricTypeError> {
        self.with_map(|m| {
            match m
                .entry(path.to_string())
                .or_insert_with(|| Metric::Histogram(Histogram::new()))
            {
                Metric::Histogram(h) => Ok(h.clone()),
                other => Err(type_error(path, other.kind(), MetricKind::Histogram)),
            }
        })
    }

    /// Registers (or retrieves) a text metric at `path`; fails if the path
    /// already holds a different kind of metric.
    pub fn try_text(&self, path: &str) -> Result<TextMetric, MetricTypeError> {
        self.with_map(|m| {
            match m
                .entry(path.to_string())
                .or_insert_with(|| Metric::Text(TextMetric::new()))
            {
                Metric::Text(t) => Ok(t.clone()),
                other => Err(type_error(path, other.kind(), MetricKind::Text)),
            }
        })
    }

    /// Registers (or retrieves) a counter at `path`.
    ///
    /// # Panics
    /// If the path already holds a different kind of metric (see
    /// [`MetricsRegistry::try_counter`]).
    pub fn counter(&self, path: &str) -> Counter {
        self.try_counter(path).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Registers (or retrieves) an integer gauge at `path`.
    ///
    /// # Panics
    /// If the path already holds a different kind of metric (see
    /// [`MetricsRegistry::try_gauge`]).
    pub fn gauge(&self, path: &str) -> Gauge {
        self.try_gauge(path).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Registers (or retrieves) a floating-point gauge at `path`.
    ///
    /// # Panics
    /// If the path already holds a different kind of metric (see
    /// [`MetricsRegistry::try_float_gauge`]).
    pub fn float_gauge(&self, path: &str) -> FloatGauge {
        self.try_float_gauge(path).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Registers (or retrieves) a histogram at `path`.
    ///
    /// # Panics
    /// If the path already holds a different kind of metric (see
    /// [`MetricsRegistry::try_histogram`]).
    pub fn histogram(&self, path: &str) -> Histogram {
        self.try_histogram(path).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Registers (or retrieves) a text metric at `path`.
    ///
    /// # Panics
    /// If the path already holds a different kind of metric (see
    /// [`MetricsRegistry::try_text`]).
    pub fn text(&self, path: &str) -> TextMetric {
        self.try_text(path).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The kind of metric registered at `path`, if any.
    pub fn kind_of(&self, path: &str) -> Option<MetricKind> {
        self.with_map(|m| m.get(path).map(Metric::kind))
    }

    /// Snapshot of one histogram's state, if `path` holds a histogram.
    pub fn histogram_snapshot(&self, path: &str) -> Option<HistogramSnapshot> {
        self.with_map(|m| match m.get(path) {
            Some(Metric::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        })
    }

    /// All registered paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.with_map(|m| m.keys().cloned().collect())
    }

    /// Walks every registered metric into `root` as a node tree.  The last
    /// path segment becomes a property on its parent node — except for
    /// histograms, which become a node of their own carrying `count`,
    /// `sum`, `max`, `mean` and the three headline percentiles.
    pub fn snapshot_into(&self, root: &mut InspectNode) {
        let metrics: Vec<(String, Metric)> =
            self.with_map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
        for (path, metric) in metrics {
            let mut segments: Vec<&str> = path.split('/').collect();
            let leaf = segments.pop().unwrap_or("");
            let mut node = &mut *root;
            for seg in segments {
                node = node.child_mut(seg);
            }
            match metric {
                Metric::Counter(c) => node.set(leaf, InspectValue::UInt(c.get())),
                Metric::Gauge(g) => node.set(leaf, InspectValue::UInt(g.get())),
                Metric::Float(g) => node.set(leaf, InspectValue::Double(g.get())),
                Metric::Text(t) => node.set(leaf, InspectValue::Text(t.get())),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let hn = node.child_mut(leaf);
                    hn.set("count", InspectValue::UInt(s.count));
                    hn.set("sum", InspectValue::UInt(s.sum));
                    hn.set("max", InspectValue::UInt(s.max));
                    hn.set("mean", InspectValue::Double(s.mean()));
                    hn.set("p50", InspectValue::UInt(s.p50()));
                    hn.set("p95", InspectValue::UInt(s.p95()));
                    hn.set("p99", InspectValue::UInt(s.p99()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = MetricsRegistry::new();
        let a = r.counter("core/sorts");
        let b = r.counter("core/sorts");
        a.inc();
        b.add(2);
        assert!(a.same_as(&b));
        assert_eq!(a.get(), 3);
        assert!(r.histogram("x/h").same_as(&r.histogram("x/h")));
    }

    #[test]
    fn type_conflicts_yield_typed_errors() {
        let r = MetricsRegistry::new();
        let c = r.counter("path");
        c.add(5);
        // Asking for the same path as a gauge must neither clobber the
        // counter nor hand back a silently detached handle.
        let err = r.try_gauge("path").unwrap_err();
        assert_eq!(err.path, "path");
        assert_eq!(err.existing, MetricKind::Counter);
        assert_eq!(err.requested, MetricKind::Gauge);
        let msg = err.to_string();
        assert!(msg.contains("`path`"), "message names the path: {msg}");
        assert!(msg.contains("counter") && msg.contains("gauge"));
        // The original registration survives the failed attempt.
        assert_eq!(r.counter("path").get(), 5);
        assert_eq!(r.kind_of("path"), Some(MetricKind::Counter));
        assert_eq!(r.kind_of("missing"), None);
        assert_eq!(r.paths(), vec!["path".to_string()]);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn infallible_registration_panics_on_kind_mismatch() {
        let r = MetricsRegistry::new();
        r.counter("path");
        let _ = r.histogram("path");
    }

    #[test]
    fn every_kind_pair_reports_the_right_error() {
        let r = MetricsRegistry::new();
        r.counter("c");
        r.gauge("g");
        r.float_gauge("f");
        r.histogram("h");
        r.text("t");
        assert_eq!(r.try_text("c").unwrap_err().requested, MetricKind::Text);
        assert_eq!(r.try_counter("g").unwrap_err().existing, MetricKind::Gauge);
        assert_eq!(
            r.try_histogram("f").unwrap_err().existing,
            MetricKind::FloatGauge
        );
        assert_eq!(
            r.try_float_gauge("h").unwrap_err().existing,
            MetricKind::Histogram
        );
        assert_eq!(r.try_gauge("t").unwrap_err().existing, MetricKind::Text);
        // Same-kind re-registration stays idempotent.
        assert!(r.try_counter("c").unwrap().same_as(&r.counter("c")));
    }

    #[test]
    fn snapshot_builds_a_hierarchy() {
        let r = MetricsRegistry::new();
        r.counter("service/requests").add(7);
        r.gauge("service/class/u64/queue_depth").set(3);
        r.float_gauge("multi_gpu/dev0/utilisation").set(0.5);
        r.text("multi_gpu/dev0/name").set("Titan X");
        r.histogram("service/latency_ns").record(4_000);

        let mut root = InspectNode::new("root");
        r.snapshot_into(&mut root);

        assert_eq!(root.node("service").unwrap().uint("requests"), Some(7));
        assert_eq!(
            root.node("service/class/u64").unwrap().uint("queue_depth"),
            Some(3)
        );
        assert_eq!(
            root.node("multi_gpu/dev0").unwrap().double("utilisation"),
            Some(0.5)
        );
        assert_eq!(
            root.node("multi_gpu/dev0").unwrap().text("name"),
            Some("Titan X")
        );
        let hist = root.node("service/latency_ns").unwrap();
        assert_eq!(hist.uint("count"), Some(1));
        assert_eq!(hist.uint("max"), Some(4_000));
    }

    #[test]
    fn histogram_snapshot_lookup() {
        let r = MetricsRegistry::new();
        r.histogram("lat").record(10);
        assert_eq!(r.histogram_snapshot("lat").unwrap().count, 1);
        assert!(r.histogram_snapshot("missing").is_none());
        r.counter("c");
        assert!(r.histogram_snapshot("c").is_none());
    }
}
