//! The metrics registry: hierarchical paths, idempotent registration.
//!
//! Metrics live under `/`-separated paths such as
//! `service/class/u64_pairs/queue_depth`.  Registration is **idempotent**:
//! asking for `counter("core/sorts")` twice returns two handles to the
//! *same* atomic cell.  That property is what lets short-lived clones — a
//! service worker thread, a per-device sorter lane rebuilt after a pool
//! swap — all aggregate into one tree without any coordination beyond the
//! path string.
//!
//! Registration takes a mutex (a `BTreeMap` lookup); updates through the
//! returned handles are lock-free.  Components therefore register once at
//! construction time and keep the handles.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::inspect::{InspectNode, InspectValue};
use crate::metrics::{Counter, FloatGauge, Gauge, TextMetric};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Float(FloatGauge),
    Histogram(Histogram),
    Text(TextMetric),
}

/// A concurrent map from hierarchical path to metric.
///
/// Paths use `/` as the separator; the final segment becomes a property
/// name in snapshots (histograms become a whole node, since they carry
/// several values).  Registering a path that already holds a metric of a
/// *different* kind returns a fresh detached handle instead of corrupting
/// the tree — the caller keeps a working metric, it just is not shared.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("paths", &self.paths().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn with_map<R>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> R) -> R {
        f(&mut self.metrics.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Registers (or retrieves) a counter at `path`.
    pub fn counter(&self, path: &str) -> Counter {
        self.with_map(|m| {
            match m
                .entry(path.to_string())
                .or_insert_with(|| Metric::Counter(Counter::new()))
            {
                Metric::Counter(c) => c.clone(),
                _ => Counter::new(),
            }
        })
    }

    /// Registers (or retrieves) an integer gauge at `path`.
    pub fn gauge(&self, path: &str) -> Gauge {
        self.with_map(|m| {
            match m
                .entry(path.to_string())
                .or_insert_with(|| Metric::Gauge(Gauge::new()))
            {
                Metric::Gauge(g) => g.clone(),
                _ => Gauge::new(),
            }
        })
    }

    /// Registers (or retrieves) a floating-point gauge at `path`.
    pub fn float_gauge(&self, path: &str) -> FloatGauge {
        self.with_map(|m| {
            match m
                .entry(path.to_string())
                .or_insert_with(|| Metric::Float(FloatGauge::new()))
            {
                Metric::Float(g) => g.clone(),
                _ => FloatGauge::new(),
            }
        })
    }

    /// Registers (or retrieves) a histogram at `path`.
    pub fn histogram(&self, path: &str) -> Histogram {
        self.with_map(|m| {
            match m
                .entry(path.to_string())
                .or_insert_with(|| Metric::Histogram(Histogram::new()))
            {
                Metric::Histogram(h) => h.clone(),
                _ => Histogram::new(),
            }
        })
    }

    /// Registers (or retrieves) a text metric at `path`.
    pub fn text(&self, path: &str) -> TextMetric {
        self.with_map(|m| {
            match m
                .entry(path.to_string())
                .or_insert_with(|| Metric::Text(TextMetric::new()))
            {
                Metric::Text(t) => t.clone(),
                _ => TextMetric::new(),
            }
        })
    }

    /// Snapshot of one histogram's state, if `path` holds a histogram.
    pub fn histogram_snapshot(&self, path: &str) -> Option<HistogramSnapshot> {
        self.with_map(|m| match m.get(path) {
            Some(Metric::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        })
    }

    /// All registered paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.with_map(|m| m.keys().cloned().collect())
    }

    /// Walks every registered metric into `root` as a node tree.  The last
    /// path segment becomes a property on its parent node — except for
    /// histograms, which become a node of their own carrying `count`,
    /// `sum`, `max`, `mean` and the three headline percentiles.
    pub fn snapshot_into(&self, root: &mut InspectNode) {
        let metrics: Vec<(String, Metric)> =
            self.with_map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
        for (path, metric) in metrics {
            let mut segments: Vec<&str> = path.split('/').collect();
            let leaf = segments.pop().unwrap_or("");
            let mut node = &mut *root;
            for seg in segments {
                node = node.child_mut(seg);
            }
            match metric {
                Metric::Counter(c) => node.set(leaf, InspectValue::UInt(c.get())),
                Metric::Gauge(g) => node.set(leaf, InspectValue::UInt(g.get())),
                Metric::Float(g) => node.set(leaf, InspectValue::Double(g.get())),
                Metric::Text(t) => node.set(leaf, InspectValue::Text(t.get())),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let hn = node.child_mut(leaf);
                    hn.set("count", InspectValue::UInt(s.count));
                    hn.set("sum", InspectValue::UInt(s.sum));
                    hn.set("max", InspectValue::UInt(s.max));
                    hn.set("mean", InspectValue::Double(s.mean()));
                    hn.set("p50", InspectValue::UInt(s.p50()));
                    hn.set("p95", InspectValue::UInt(s.p95()));
                    hn.set("p99", InspectValue::UInt(s.p99()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = MetricsRegistry::new();
        let a = r.counter("core/sorts");
        let b = r.counter("core/sorts");
        a.inc();
        b.add(2);
        assert!(a.same_as(&b));
        assert_eq!(a.get(), 3);
        assert!(r.histogram("x/h").same_as(&r.histogram("x/h")));
    }

    #[test]
    fn type_conflicts_yield_detached_handles() {
        let r = MetricsRegistry::new();
        let c = r.counter("path");
        c.add(5);
        // Asking for the same path as a gauge must not clobber the counter.
        let g = r.gauge("path");
        g.set(99);
        assert_eq!(r.counter("path").get(), 5);
        assert_eq!(r.paths(), vec!["path".to_string()]);
    }

    #[test]
    fn snapshot_builds_a_hierarchy() {
        let r = MetricsRegistry::new();
        r.counter("service/requests").add(7);
        r.gauge("service/class/u64/queue_depth").set(3);
        r.float_gauge("multi_gpu/dev0/utilisation").set(0.5);
        r.text("multi_gpu/dev0/name").set("Titan X");
        r.histogram("service/latency_ns").record(4_000);

        let mut root = InspectNode::new("root");
        r.snapshot_into(&mut root);

        assert_eq!(root.node("service").unwrap().uint("requests"), Some(7));
        assert_eq!(
            root.node("service/class/u64").unwrap().uint("queue_depth"),
            Some(3)
        );
        assert_eq!(
            root.node("multi_gpu/dev0").unwrap().double("utilisation"),
            Some(0.5)
        );
        assert_eq!(
            root.node("multi_gpu/dev0").unwrap().text("name"),
            Some("Titan X")
        );
        let hist = root.node("service/latency_ns").unwrap();
        assert_eq!(hist.uint("count"), Some(1));
        assert_eq!(hist.uint("max"), Some(4_000));
    }

    #[test]
    fn histogram_snapshot_lookup() {
        let r = MetricsRegistry::new();
        r.histogram("lat").record(10);
        assert_eq!(r.histogram_snapshot("lat").unwrap().count, 1);
        assert!(r.histogram_snapshot("missing").is_none());
        r.counter("c");
        assert!(r.histogram_snapshot("c").is_none());
    }
}
