//! The inspection surface: [`Inspector`] hubs and [`InspectNode`] snapshots.
//!
//! Modelled on Fuchsia's component inspection: a component owns an
//! [`Inspector`], registers metrics under hierarchical paths, and anyone
//! holding a clone can call [`Inspector::snapshot`] at any moment to get a
//! consistent-enough tree of everything — while sorts and service requests
//! are still in flight.  The snapshot is a plain [`InspectNode`] value that
//! serialises to JSON (and parses back, see [`crate::json`]).

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json;
use crate::metrics::{Counter, FloatGauge, Gauge, TextMetric};
use crate::registry::{MetricTypeError, MetricsRegistry};
use crate::span::{RingSink, SpanGuard, SpanSink};
use crate::JsonError;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One property value in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum InspectValue {
    /// An unsigned integer (counters, gauges, histogram aggregates).
    UInt(u64),
    /// A signed integer (only produced by parsing; kept for generality).
    Int(i64),
    /// A floating-point value (ratios, means).
    Double(f64),
    /// A text value (labels, device names).
    Text(String),
}

impl InspectValue {
    /// The value as a `u64`, if it is a [`InspectValue::UInt`].
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            InspectValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64`, widening integers as needed.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            InspectValue::UInt(v) => Some(*v as f64),
            InspectValue::Int(v) => Some(*v as f64),
            InspectValue::Double(v) => Some(*v),
            InspectValue::Text(_) => None,
        }
    }

    /// The value as text, if it is a [`InspectValue::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            InspectValue::Text(v) => Some(v),
            _ => None,
        }
    }
}

/// One node in a snapshot tree: a name, a list of `(key, value)`
/// properties, and child nodes.  Ordering is deterministic (registry paths
/// are sorted), so equal states produce equal trees.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InspectNode {
    /// Node name (one path segment).
    pub name: String,
    /// Properties in insertion order.
    pub properties: Vec<(String, InspectValue)>,
    /// Child nodes in insertion order.
    pub children: Vec<InspectNode>,
}

impl InspectNode {
    /// An empty node with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        InspectNode {
            name: name.into(),
            properties: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Finds or creates the direct child named `name`.
    pub fn child_mut(&mut self, name: &str) -> &mut InspectNode {
        // Two passes to satisfy the borrow checker without unsafe.
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(InspectNode::new(name));
        self.children.last_mut().expect("just pushed")
    }

    /// Sets (replacing on re-set) the property `key`.
    pub fn set(&mut self, key: &str, value: InspectValue) {
        if let Some(slot) = self.properties.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.properties.push((key.to_string(), value));
        }
    }

    /// Looks up a property value by key.
    pub fn property(&self, key: &str) -> Option<&InspectValue> {
        self.properties
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// A property as `u64` (counters, gauges).
    pub fn uint(&self, key: &str) -> Option<u64> {
        self.property(key).and_then(InspectValue::as_uint)
    }

    /// A property as `f64` (integers widen).
    pub fn double(&self, key: &str) -> Option<f64> {
        self.property(key).and_then(InspectValue::as_double)
    }

    /// A property as text.
    pub fn text(&self, key: &str) -> Option<&str> {
        self.property(key).and_then(InspectValue::as_text)
    }

    /// Walks a `/`-separated path of child names from this node.
    pub fn node(&self, path: &str) -> Option<&InspectNode> {
        let mut node = self;
        for seg in path.split('/') {
            node = node.children.iter().find(|c| c.name == seg)?;
        }
        Some(node)
    }

    /// Serialises the tree to JSON.
    pub fn to_json(&self) -> String {
        json::node_to_json(self)
    }

    /// Parses a tree from JSON produced by [`InspectNode::to_json`].
    pub fn from_json(input: &str) -> Result<InspectNode, JsonError> {
        json::node_from_json(input)
    }
}

struct Inner {
    registry: MetricsRegistry,
    sink: Arc<dyn SpanSink>,
}

/// The shared observability hub: a metrics registry plus a span sink.
///
/// Cloning is cheap (one `Arc`), and every clone reports into the same
/// tree — the sharded sorter hands its inspector to the sort service so a
/// single [`snapshot`](Inspector::snapshot) covers core, multi-GPU,
/// out-of-core, and service layers at once.
#[derive(Clone)]
pub struct Inspector(Arc<Inner>);

impl Default for Inspector {
    fn default() -> Self {
        Inspector::new()
    }
}

impl std::fmt::Debug for Inspector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inspector")
            .field("registry", &self.0.registry)
            .finish()
    }
}

impl Inspector {
    /// An inspector with the default bounded [`RingSink`] (256 spans).
    pub fn new() -> Self {
        Inspector::with_sink(Arc::new(RingSink::new(256)))
    }

    /// An inspector with a caller-provided span sink.
    pub fn with_sink(sink: Arc<dyn SpanSink>) -> Self {
        Inspector(Arc::new(Inner {
            registry: MetricsRegistry::new(),
            sink,
        }))
    }

    /// The underlying metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.0.registry
    }

    /// Whether two inspectors share the same registry and sink.
    pub fn same_as(&self, other: &Inspector) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Registers (or retrieves) a counter at `path`.  Panics if the path
    /// holds a different kind; see [`Inspector::try_counter`].
    pub fn counter(&self, path: &str) -> Counter {
        self.0.registry.counter(path)
    }

    /// Registers (or retrieves) an integer gauge at `path`.  Panics if the
    /// path holds a different kind; see [`Inspector::try_gauge`].
    pub fn gauge(&self, path: &str) -> Gauge {
        self.0.registry.gauge(path)
    }

    /// Registers (or retrieves) a floating-point gauge at `path`.  Panics
    /// if the path holds a different kind; see
    /// [`Inspector::try_float_gauge`].
    pub fn float_gauge(&self, path: &str) -> FloatGauge {
        self.0.registry.float_gauge(path)
    }

    /// Registers (or retrieves) a histogram at `path`.  Panics if the path
    /// holds a different kind; see [`Inspector::try_histogram`].
    pub fn histogram(&self, path: &str) -> Histogram {
        self.0.registry.histogram(path)
    }

    /// Registers (or retrieves) a text metric at `path`.  Panics if the
    /// path holds a different kind; see [`Inspector::try_text`].
    pub fn text(&self, path: &str) -> TextMetric {
        self.0.registry.text(path)
    }

    /// Fallible counter registration: a [`MetricTypeError`] names the path
    /// and both kinds when the path already holds a different metric.
    pub fn try_counter(&self, path: &str) -> Result<Counter, MetricTypeError> {
        self.0.registry.try_counter(path)
    }

    /// Fallible integer-gauge registration (see [`Inspector::try_counter`]).
    pub fn try_gauge(&self, path: &str) -> Result<Gauge, MetricTypeError> {
        self.0.registry.try_gauge(path)
    }

    /// Fallible float-gauge registration (see [`Inspector::try_counter`]).
    pub fn try_float_gauge(&self, path: &str) -> Result<FloatGauge, MetricTypeError> {
        self.0.registry.try_float_gauge(path)
    }

    /// Fallible histogram registration (see [`Inspector::try_counter`]).
    pub fn try_histogram(&self, path: &str) -> Result<Histogram, MetricTypeError> {
        self.0.registry.try_histogram(path)
    }

    /// Fallible text-metric registration (see [`Inspector::try_counter`]).
    pub fn try_text(&self, path: &str) -> Result<TextMetric, MetricTypeError> {
        self.0.registry.try_text(path)
    }

    /// Snapshot of the histogram at `path`, if one is registered there.
    pub fn histogram_snapshot(&self, path: &str) -> Option<HistogramSnapshot> {
        self.0.registry.histogram_snapshot(path)
    }

    /// Opens a scoped timer that reports to the span sink when dropped or
    /// [`finish`](SpanGuard::finish)ed.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        SpanGuard::start(name, self.0.sink.clone(), None)
    }

    /// Like [`span`](Inspector::span), but the measured duration is also
    /// recorded into the histogram registered at `histogram_path`.
    pub fn span_with(&self, name: impl Into<String>, histogram_path: &str) -> SpanGuard {
        let histogram = self.0.registry.histogram(histogram_path);
        SpanGuard::start(name, self.0.sink.clone(), Some(histogram))
    }

    /// Walks the whole tree — every registered metric plus an aggregate of
    /// the span sink's retained spans under `spans/` — into a root
    /// [`InspectNode`].  Safe to call at any moment from any thread.
    pub fn snapshot(&self) -> InspectNode {
        let mut root = InspectNode::new("root");
        self.0.registry.snapshot_into(&mut root);

        let recent = self.0.sink.recent();
        if !recent.is_empty() {
            // Aggregate retained spans by name, deterministically ordered.
            let mut agg: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
            for span in recent {
                let ns = u64::try_from(span.duration.as_nanos()).unwrap_or(u64::MAX);
                let slot = agg.entry(span.name).or_insert((0, 0, 0));
                slot.0 += 1;
                slot.1 = slot.1.saturating_add(ns);
                slot.2 = slot.2.max(ns);
            }
            let spans = root.child_mut("spans");
            for (name, (count, total_ns, max_ns)) in agg {
                let mut node = &mut *spans;
                for seg in name.split('/') {
                    node = node.child_mut(seg);
                }
                node.set("count", InspectValue::UInt(count));
                node.set("total_ns", InspectValue::UInt(total_ns));
                node.set("max_ns", InspectValue::UInt(max_ns));
            }
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_live_metrics() {
        let inspector = Inspector::new();
        let sorts = inspector.counter("core/sorts");
        inspector.gauge("service/queue_depth").set(4);
        sorts.add(2);

        let snap = inspector.snapshot();
        assert_eq!(snap.node("core").unwrap().uint("sorts"), Some(2));
        assert_eq!(snap.node("service").unwrap().uint("queue_depth"), Some(4));

        sorts.inc();
        assert_eq!(
            inspector.snapshot().node("core").unwrap().uint("sorts"),
            Some(3),
            "snapshots see updates made after earlier snapshots"
        );
    }

    #[test]
    fn clones_share_the_tree() {
        let a = Inspector::new();
        let b = a.clone();
        assert!(a.same_as(&b));
        b.counter("x").inc();
        assert_eq!(a.snapshot().uint("x"), Some(1));
        assert!(!a.same_as(&Inspector::new()));
    }

    #[test]
    fn spans_aggregate_under_their_path() {
        let inspector = Inspector::new();
        inspector.span("multi_gpu/partition").finish();
        inspector.span("multi_gpu/partition").finish();
        inspector.span("multi_gpu/merge").finish();

        let snap = inspector.snapshot();
        let partition = snap.node("spans/multi_gpu/partition").unwrap();
        assert_eq!(partition.uint("count"), Some(2));
        assert_eq!(
            snap.node("spans/multi_gpu/merge").unwrap().uint("count"),
            Some(1)
        );
    }

    #[test]
    fn span_with_feeds_the_histogram() {
        let inspector = Inspector::new();
        inspector
            .span_with("service/flush", "service/flush_ns")
            .finish();
        assert_eq!(
            inspector
                .histogram_snapshot("service/flush_ns")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let inspector = Inspector::new();
        inspector.counter("service/requests").add(9);
        inspector
            .float_gauge("multi_gpu/dev0/utilisation")
            .set(0.25);
        inspector.text("multi_gpu/dev0/name").set("GTX 980");
        inspector.histogram("service/latency_ns").record(123_456);
        inspector.span("core/pass").finish();

        let snap = inspector.snapshot();
        let parsed = InspectNode::from_json(&snap.to_json()).expect("parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn node_path_lookup_and_setters() {
        let mut node = InspectNode::new("root");
        node.set("k", InspectValue::UInt(1));
        node.set("k", InspectValue::UInt(2));
        assert_eq!(node.uint("k"), Some(2));
        assert_eq!(node.properties.len(), 1, "set replaces in place");
        node.child_mut("a")
            .child_mut("b")
            .set("v", InspectValue::Int(-1));
        assert_eq!(
            node.node("a/b").unwrap().property("v"),
            Some(&InspectValue::Int(-1))
        );
        assert!(node.node("a/missing").is_none());
        assert_eq!(node.double("k"), Some(2.0));
        assert!(node.text("k").is_none());
    }
}
