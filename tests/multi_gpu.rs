//! Integration tests of the multi-GPU sharded sort engine: output equality
//! with the standard-library sort for every key shape and distribution,
//! capacity-proportional sharding on heterogeneous pools, and scaling of
//! the simulated critical path.

use hybrid_radix_sort::gpu_sim::DeviceSpec;
use hybrid_radix_sort::multi_gpu::{DevicePool, ShardedSorter, SimDevice};
use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::workloads::{uniform_keys, Distribution, KeyCodec, ZipfGenerator};

fn sorter(p: usize) -> ShardedSorter {
    // Scale the on-GPU configuration to the functional test input sizes so
    // the shards run several counting passes plus local sorts.
    let gpu = HybridRadixSorter::new(SortConfig::keys_64().scaled_for(50_000, 250_000_000));
    ShardedSorter::new(DevicePool::titan_cluster(p))
        .with_sorter(gpu)
        .with_merge_threads(4)
}

#[test]
fn matches_std_sort_for_u32_u64_and_distributions() {
    for p in [1usize, 2, 4] {
        let s = sorter(p);
        for dist in [
            Distribution::Uniform,
            Distribution::paper_zipf(10_000),
            Distribution::Sorted,
            Distribution::ReverseSorted,
            Distribution::Constant,
        ] {
            let keys64: Vec<u64> = dist.generate(90_000, 42);
            let expected = KeyCodec::std_sorted(&keys64);
            let mut k = keys64;
            s.sort(&mut k);
            assert_eq!(k, expected, "u64, p={p}, {}", dist.name());

            let keys32: Vec<u32> = dist.generate(60_000, 43);
            let expected = KeyCodec::std_sorted(&keys32);
            let mut k = keys32;
            s.sort(&mut k);
            assert_eq!(k, expected, "u32, p={p}, {}", dist.name());
        }
    }
}

#[test]
fn key_value_pairs_stay_associated() {
    let keys: Vec<u64> = ZipfGenerator::paper_keys(80_000, 5);
    for p in [2usize, 4] {
        let mut k = keys.clone();
        let mut v: Vec<u64> = k.iter().map(|&key| !key).collect();
        let report = sorter(p).sort_pairs(&mut k, &mut v);
        assert!(k.windows(2).all(|w| w[0] <= w[1]));
        assert!(k.iter().zip(v.iter()).all(|(&key, &val)| val == !key));
        assert_eq!(report.value_bytes, 8);
        assert_eq!(report.shards.len(), p);
    }
}

#[test]
fn signed_and_float_keys_sort_via_their_codec() {
    let s = sorter(3);
    let mut ints: Vec<i64> = Distribution::Uniform.generate(70_000, 7);
    let expected = KeyCodec::std_sorted(&ints);
    s.sort(&mut ints);
    assert_eq!(ints, expected);

    let mut floats: Vec<f64> = (0..70_000)
        .map(|i| ((i as f64) - 35_000.0) * 0.73)
        .rev()
        .collect();
    s.sort(&mut floats);
    assert!(floats.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn critical_path_shrinks_with_more_devices_on_uniform_input() {
    let keys = uniform_keys::<u64>(250_000, 99);
    let mut last = f64::INFINITY;
    for p in [1usize, 2, 4, 8] {
        let mut k = keys.clone();
        let report = sorter(p).sort(&mut k);
        let cp = report.critical_path.secs();
        assert!(cp < last, "p={p}: critical path {cp} did not shrink");
        last = cp;
    }
}

#[test]
fn heterogeneous_pool_sorts_and_loads_by_capacity() {
    let pool = DevicePool::new(vec![
        SimDevice::on_nvlink2(DeviceSpec::tesla_p100()),
        SimDevice::on_pcie3(DeviceSpec::titan_x_pascal()),
        SimDevice::on_pcie3(DeviceSpec::gtx_980()),
    ]);
    let gpu = HybridRadixSorter::new(SortConfig::keys_64().scaled_for(50_000, 250_000_000));
    let s = ShardedSorter::new(pool).with_sorter(gpu);

    let keys = uniform_keys::<u64>(150_000, 3);
    let expected = KeyCodec::std_sorted(&keys);
    let mut k = keys;
    let report = s.sort(&mut k);
    assert_eq!(k, expected);
    // Shards follow bandwidth: P100 (580) > Titan X (369) > GTX 980 (180).
    assert!(report.shards[0].n > report.shards[1].n);
    assert!(report.shards[1].n > report.shards[2].n);
}

#[test]
fn shard_ranges_tile_the_key_space_and_own_their_keys() {
    let keys: Vec<u64> = Distribution::paper_zipf(5_000).generate(120_000, 13);
    let mut k = keys;
    let report = sorter(4).sort(&mut k);
    let ranges: Vec<(u64, u64)> = report.shards.iter().map(|s| s.range).collect();
    assert_eq!(ranges[0].0, 0);
    assert_eq!(ranges.last().unwrap().1, u64::MAX);
    for w in ranges.windows(2) {
        assert_eq!(w[0].1 + 1, w[1].0, "gap/overlap between shard ranges");
    }
    // The sorted output is the concatenation of the shards in range order.
    let mut offset = 0usize;
    for s in &report.shards {
        let slice = &k[offset..offset + s.n as usize];
        assert!(slice
            .iter()
            .all(|&key| key >= s.range.0 && key <= s.range.1));
        offset += s.n as usize;
    }
    assert_eq!(offset, k.len());
}

#[test]
fn nvlink_beats_pcie_for_the_same_device() {
    let keys = uniform_keys::<u64>(200_000, 21);
    let gpu = HybridRadixSorter::new(SortConfig::keys_64().scaled_for(100_000, 250_000_000));
    let run = |link: fn(DeviceSpec) -> SimDevice| {
        let pool = DevicePool::homogeneous(2, link(DeviceSpec::titan_x_pascal()));
        let mut k = keys.clone();
        ShardedSorter::new(pool)
            .with_sorter(gpu.clone())
            .sort(&mut k)
            .critical_path
    };
    let pcie = run(SimDevice::on_pcie3);
    let nvlink = run(SimDevice::on_nvlink2);
    assert!(
        nvlink.secs() < pcie.secs(),
        "NVLink {} should beat PCIe {}",
        nvlink,
        pcie
    );
}
