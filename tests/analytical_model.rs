//! The Section 4.5 analytical model versus the instrumented sorter: the
//! bounds must hold for real executions, and the bookkeeping overhead must
//! stay below 5 % for the paper's example configuration.

use hybrid_radix_sort::hrs_core::AnalyticalModel;
use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::workloads::{Distribution, EntropyLevel};

#[test]
fn paper_example_overhead_stays_below_five_percent() {
    for n in [10_000_000u64, 500_000_000, 4_000_000_000] {
        let m = AnalyticalModel::paper_example(n);
        assert!(m.overhead_fraction() < 0.05, "n = {n}");
    }
}

#[test]
fn live_bucket_count_of_real_runs_respects_the_bound() {
    let n = 120_000usize;
    let config = SortConfig::keys_32().scaled_for(n, 500_000_000);
    let model_cfg = config.clone();
    for dist in [
        Distribution::Uniform,
        Distribution::Entropy(EntropyLevel::with_and_count(1)),
        Distribution::Entropy(EntropyLevel::with_and_count(5)),
        Distribution::Constant,
    ] {
        let mut keys: Vec<u32> = dist.generate(n, 77);
        let report = HybridRadixSorter::new(config.clone()).sort(&mut keys);
        let model = AnalyticalModel::new(n as u64, 32, &model_cfg);
        assert!(
            report.max_live_buckets <= model.max_buckets(),
            "{}: {} live buckets > bound {}",
            dist.name(),
            report.max_live_buckets,
            model.max_buckets()
        );
        // I4: block bound holds for every pass.
        for p in &report.passes {
            assert!(p.n_blocks <= model.max_blocks(), "{}", dist.name());
        }
    }
}

#[test]
fn device_memory_capacity_check_matches_the_titan_x() {
    let titan = DeviceSpec::titan_x_pascal();
    let cfg = SortConfig::keys_32();
    let max = AnalyticalModel::max_keys_for_memory(32, &cfg, titan.device_memory_bytes);
    // Roughly 1.5 billion 32-bit keys fit (2 × 4 bytes each plus overhead).
    assert!(max > 1_200_000_000 && max < 1_700_000_000, "max = {max}");
    assert!(AnalyticalModel::new(max, 32, &cfg).fits_in(titan.device_memory_bytes));
}
