//! Integration tests of the unified telemetry layer: live snapshots taken
//! concurrently with a submission flood must stay internally consistent
//! (`requests ≥ batches` at every instant, elements conserved at the end),
//! the inspection tree must round-trip through its JSON codec bit-exactly,
//! and one snapshot must cover every layer of the stack at once.

use hybrid_radix_sort::telemetry::InspectNode;
use hybrid_radix_sort::{prelude::*, workloads};
use proptest::prelude::*;
use std::time::Duration;

fn payload(i: usize, n: usize) -> SortPayload {
    let seed = i as u64 + 1;
    match i % 3 {
        0 => SortPayload::U32Keys(workloads::uniform_keys::<u32>(n, seed)),
        1 => SortPayload::U64Keys(workloads::uniform_keys::<u64>(n, seed)),
        _ => SortPayload::U64Pairs {
            keys: workloads::uniform_keys::<u64>(n, seed),
            values: (0..n as u32).collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Snapshots interleaved with a flood: every live read happens while
    /// the worker thread is admitting, flushing, and resolving
    /// concurrently, and none may contradict itself.
    #[test]
    fn snapshots_stay_consistent_under_a_submit_flood(
        sizes in proptest::collection::vec(1usize..4_000, 4..16),
        linger_ms in 0u64..3,
    ) {
        let service = SortService::start(
            ShardedSorter::new(DevicePool::titan_cluster(2)),
            ServiceConfig::default()
                .with_queue_depth(sizes.len())
                .with_max_linger(Duration::from_millis(linger_ms)),
        );
        let total: u64 = sizes.iter().map(|&n| n as u64).sum();
        let mut tickets = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            tickets.push(service.submit(payload(i, n)).expect("admission"));
            let live = service.stats_snapshot();
            prop_assert!(
                live.requests >= live.batches,
                "snapshot saw {} batches for {} requests",
                live.batches,
                live.requests
            );
            prop_assert!(live.requests <= i as u64 + 1);
            prop_assert!(live.elements <= total);
        }
        for t in tickets {
            t.wait().expect("ticket resolves");
        }
        // Everything resolved: the counters must have conserved the flood.
        let stats = service.stats_snapshot();
        prop_assert_eq!(stats.requests, sizes.len() as u64);
        prop_assert_eq!(stats.elements, total);
        prop_assert!(stats.batches >= 1);
        prop_assert!(stats.requests >= stats.batches);
        prop_assert!(stats.max_batch_requests as u64 <= stats.requests);
        prop_assert!(stats.latency_p99 >= stats.latency_p50);
        // The inspection tree agrees with the typed view.
        let snap = service.inspector().snapshot();
        let svc = snap.node("service").expect("service subtree");
        prop_assert_eq!(svc.uint("elements"), Some(total));
        prop_assert_eq!(svc.uint("requests"), Some(stats.requests));
        let shutdown_stats = service.shutdown();
        prop_assert_eq!(shutdown_stats.requests, sizes.len() as u64);
        prop_assert_eq!(shutdown_stats.elements, total);
    }
}

/// The JSON codec is lossless on edge values: zero, `u64::MAX`, exact
/// binary fractions, and text needing escapes.
#[test]
fn inspect_tree_round_trips_through_json() {
    let inspector = Inspector::new();
    inspector.counter("edge/zero");
    inspector.counter("edge/max").add(u64::MAX);
    inspector.float_gauge("edge/ratio").set(0.125);
    inspector.text("edge/label").set("titan \"x\"\\pascal\n");
    let lat = inspector.histogram("edge/lat");
    lat.record(0);
    lat.record(u64::MAX);

    let snap = inspector.snapshot();
    let parsed = InspectNode::from_json(&snap.to_json()).expect("snapshot JSON parses");
    assert_eq!(parsed, snap);
    let edge = parsed.node("edge").expect("edge subtree");
    assert_eq!(edge.uint("zero"), Some(0));
    assert_eq!(edge.uint("max"), Some(u64::MAX));
    assert_eq!(edge.double("ratio"), Some(0.125));
    assert_eq!(edge.text("label"), Some("titan \"x\"\\pascal\n"));
    assert_eq!(parsed.node("edge/lat").unwrap().uint("count"), Some(2));
}

/// One snapshot covers the whole stack: service counters, class queues,
/// the sharded engine, per-device core sorters, and span aggregates — and
/// the serialised artifact still contains all of it after a round trip.
#[test]
fn one_snapshot_covers_the_whole_stack() {
    let service = SortService::start(
        ShardedSorter::new(DevicePool::titan_cluster(2)),
        ServiceConfig::default(),
    );
    let tickets: Vec<SortTicket> = (0..6)
        .map(|i| service.submit(payload(i, 8_192)).expect("admission"))
        .collect();
    for t in tickets {
        t.wait().expect("ticket resolves");
    }
    let snap = service.inspector().snapshot();
    for path in [
        "service",
        "service/class/u32",
        "service/class/u64",
        "multi_gpu",
        "multi_gpu/dev0",
        "core/dev0",
        "spans/multi_gpu/merge",
    ] {
        assert!(snap.node(path).is_some(), "snapshot lacks {path}");
    }
    assert!(snap.node("multi_gpu").unwrap().uint("keys").unwrap() > 0);
    let parsed = InspectNode::from_json(&snap.to_json()).expect("parses");
    assert_eq!(parsed, snap);
    service.shutdown();
}
