//! Integration tests of the out-of-core lane: a request larger than the
//! pool's admission budget must round-trip through the service's chunked
//! out-of-core path with output identical to the reference sort and to an
//! in-core sharded sort on a pool big enough to hold it — including the
//! pairs path, the `Reject` policy fallback, and the admission-control
//! regressions this PR fixes.

use hybrid_radix_sort::gpu_sim::{Bandwidth, DeviceSpec};
use hybrid_radix_sort::multi_gpu::{DevicePool, ShardedSorter, SimDevice};
use hybrid_radix_sort::sort_service::{
    FlushReason, OverBudgetPolicy, ServiceConfig, SortPayload, SortService, SubmitError,
};
use proptest::prelude::*;

/// A pool of two Titan-X-like devices with their memories shrunk to 1 MiB,
/// so a few hundred kilobytes of keys overflow the admission budget.
fn tiny_memory_pool() -> DevicePool {
    let mut spec = DeviceSpec::titan_x_pascal();
    spec.device_memory_bytes = 1 << 20;
    DevicePool::homogeneous(2, SimDevice::on_pcie3(spec))
}

fn ooc_service() -> SortService {
    SortService::start(
        ShardedSorter::new(tiny_memory_pool()),
        ServiceConfig::default().with_over_budget(OverBudgetPolicy::OutOfCore),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn over_budget_keys_match_reference_and_in_core(
        n in 40_000usize..90_000,
        seed in 1u64..1_000,
    ) {
        let keys = hybrid_radix_sort::workloads::uniform_keys::<u64>(n, seed);
        // Reference: the standard library sort.
        let mut reference = keys.clone();
        reference.sort_unstable();
        // In-core comparison point: a pool big enough to hold the input.
        let mut in_core = keys.clone();
        ShardedSorter::new(DevicePool::titan_cluster(2)).sort(&mut in_core);
        prop_assert_eq!(&in_core, &reference);

        let service = ooc_service();
        let payload = SortPayload::U64Keys(keys);
        prop_assert!(
            payload.batch_bytes() > service.admission_budget(),
            "n = {} must exceed the shrunken budget",
            n
        );
        let outcome = service.submit(payload).expect("ooc admission").wait().unwrap();
        let SortPayload::U64Keys(sorted) = outcome.payload else {
            panic!("wrong variant")
        };
        prop_assert_eq!(&sorted, &reference);
        prop_assert_eq!(outcome.batch.reason, FlushReason::OutOfCore);
        prop_assert!(outcome.report.is_out_of_core());
        prop_assert_eq!(outcome.span.len, n as u64);
        // Chunk spans tile each device's shard exactly.
        let chunked: u64 = outcome.report.ooc_chunks.iter().map(|c| c.len).sum();
        prop_assert_eq!(chunked, n as u64);
        let stats = service.shutdown();
        prop_assert_eq!(stats.ooc_requests, 1);
    }

    #[test]
    fn over_budget_pairs_match_reference_and_in_core(
        n in 50_000usize..90_000,
        seed in 1u64..1_000,
    ) {
        let keys = hybrid_radix_sort::workloads::uniform_keys::<u32>(n, seed);
        let values: Vec<u32> = (0..n as u32).rev().collect();
        // Reference: sort (key, value) records; ties may permute between
        // runs (the radix sort is not stable), so compare canonically.
        let mut reference: Vec<(u32, u32)> =
            keys.iter().copied().zip(values.iter().copied()).collect();
        reference.sort_unstable();
        // In-core comparison point on a big pool.
        let (mut ik, mut iv) = (keys.clone(), values.clone());
        ShardedSorter::new(DevicePool::titan_cluster(2)).sort_pairs(&mut ik, &mut iv);
        let mut in_core: Vec<(u32, u32)> = ik.into_iter().zip(iv).collect();
        in_core.sort_unstable();
        prop_assert_eq!(&in_core, &reference);

        let service = ooc_service();
        let payload = SortPayload::U32Pairs { keys, values };
        prop_assert!(payload.batch_bytes() > service.admission_budget());
        let outcome = service.submit(payload).expect("ooc admission").wait().unwrap();
        let SortPayload::U32Pairs { keys: sk, values: sv } = outcome.payload else {
            panic!("wrong variant")
        };
        prop_assert!(sk.windows(2).all(|w| w[0] <= w[1]), "keys unsorted");
        let mut got: Vec<(u32, u32)> = sk.into_iter().zip(sv).collect();
        got.sort_unstable();
        prop_assert_eq!(&got, &reference);
        prop_assert_eq!(outcome.batch.reason, FlushReason::OutOfCore);
        prop_assert!(outcome.report.is_out_of_core());
        service.shutdown();
    }

    #[test]
    fn reject_policy_bounces_what_the_ooc_policy_admits(
        n in 40_000usize..60_000,
    ) {
        let keys = hybrid_radix_sort::workloads::uniform_keys::<u64>(n, 9);
        // Default policy: the same request that the OutOfCore service
        // admits must bounce as TooLarge.
        let reject = SortService::start(
            ShardedSorter::new(tiny_memory_pool()),
            ServiceConfig::default(),
        );
        let err = reject
            .submit(SortPayload::U64Keys(keys.clone()))
            .unwrap_err();
        prop_assert!(matches!(err, SubmitError::TooLarge { .. }), "got {}", err);
        drop(reject);

        let admit = ooc_service();
        let outcome = admit
            .submit(SortPayload::U64Keys(keys))
            .expect("ooc admission")
            .wait()
            .unwrap();
        prop_assert_eq!(outcome.batch.reason, FlushReason::OutOfCore);
        admit.shutdown();
    }
}

#[test]
fn zero_weight_pool_no_longer_admits_everything() {
    // Regression: `DevicePool::batch_budget_bytes` used to map a pool of
    // non-positive-weight devices to a u64::MAX budget, so the service
    // would admit arbitrarily large requests into a pool that can sort
    // nothing.  The budget is 0 now, and (with the default Reject policy)
    // even a tiny request bounces instead of hanging the worker.
    let mut spec = DeviceSpec::titan_x_pascal();
    spec.effective_bandwidth = Bandwidth::from_gb_per_s(0.0);
    let pool = DevicePool::homogeneous(2, SimDevice::on_pcie3(spec));
    assert_eq!(pool.batch_budget_bytes(), 0);
    let service = SortService::start(ShardedSorter::new(pool), ServiceConfig::default());
    // The resolved admission budget collapses to the 1-byte floor.
    assert!(service.admission_budget() <= 1);
    let err = service
        .submit(SortPayload::U64Keys(vec![3, 1, 2]))
        .unwrap_err();
    assert!(matches!(err, SubmitError::TooLarge { .. }), "got {err}");
}

#[test]
fn direct_ooc_engine_matches_in_core_engine() {
    // The engine-level composition claim, without the service in between:
    // the out-of-core path on a memory-starved pool produces byte-identical
    // output to the in-core path on a roomy pool.
    let keys = hybrid_radix_sort::workloads::uniform_keys::<u64>(150_000, 23);
    let mut expected = keys.clone();
    expected.sort_unstable();
    let mut in_core = keys.clone();
    ShardedSorter::new(DevicePool::titan_cluster(4)).sort(&mut in_core);
    let mut ooc = keys;
    let report = ShardedSorter::new(tiny_memory_pool()).sort_out_of_core(&mut ooc);
    assert_eq!(in_core, expected);
    assert_eq!(ooc, expected);
    assert!(report.is_out_of_core());
    assert!(report.ooc_chunks.len() > 2);
    // Every device pipelines: per-chunk finishes are monotone per device
    // and bounded by the critical path.
    for span in &report.ooc_chunks {
        assert!(span.finish <= report.critical_path);
        assert!(span.len > 0);
    }
}
