//! End-to-end correctness of the hybrid radix sort across key types,
//! distributions, configurations and optimisation variants, checked against
//! the standard library sort.

use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::workloads::{
    self, pairs::verify_indexed_pair_sort, uniform_keys, Distribution, EntropyLevel, KeyCodec,
};

fn scaled_sorter_32(n: usize) -> HybridRadixSorter {
    HybridRadixSorter::new(SortConfig::keys_32().scaled_for(n, 500_000_000))
}

fn scaled_sorter_64(n: usize) -> HybridRadixSorter {
    HybridRadixSorter::new(SortConfig::keys_64().scaled_for(n, 250_000_000))
}

#[test]
fn sorts_every_distribution_u32() {
    let n = 60_000;
    let sorter = scaled_sorter_32(n);
    let dists = [
        Distribution::Uniform,
        Distribution::Entropy(EntropyLevel::with_and_count(1)),
        Distribution::Entropy(EntropyLevel::with_and_count(4)),
        Distribution::Entropy(EntropyLevel::constant()),
        Distribution::paper_zipf(10_000),
        Distribution::Sorted,
        Distribution::ReverseSorted,
        Distribution::NearlySorted(0.02),
        Distribution::Gaussian(0.05),
        Distribution::Clustered(16),
    ];
    for dist in dists {
        let mut keys: Vec<u32> = dist.generate(n, 11);
        let expected = KeyCodec::std_sorted(&keys);
        let report = sorter.sort(&mut keys);
        assert_eq!(keys, expected, "{}", dist.name());
        assert_eq!(report.n as usize, n);
    }
}

#[test]
fn sorts_every_distribution_u64() {
    let n = 60_000;
    let sorter = scaled_sorter_64(n);
    for dist in [
        Distribution::Uniform,
        Distribution::Entropy(EntropyLevel::with_and_count(2)),
        Distribution::paper_zipf(5_000),
        Distribution::Constant,
    ] {
        let mut keys: Vec<u64> = dist.generate(n, 13);
        let expected = KeyCodec::std_sorted(&keys);
        sorter.sort(&mut keys);
        assert_eq!(keys, expected, "{}", dist.name());
    }
}

#[test]
fn sorts_signed_and_float_keys_end_to_end() {
    let sorter = HybridRadixSorter::with_defaults();

    let mut i32s: Vec<i32> = uniform_keys::<u32>(40_000, 3)
        .into_iter()
        .map(|k| k as i32)
        .collect();
    let expected = KeyCodec::std_sorted(&i32s);
    sorter.sort(&mut i32s);
    assert_eq!(i32s, expected);

    let mut i64s: Vec<i64> = uniform_keys::<u64>(40_000, 4)
        .into_iter()
        .map(|k| k as i64)
        .collect();
    let expected = KeyCodec::std_sorted(&i64s);
    sorter.sort(&mut i64s);
    assert_eq!(i64s, expected);

    let mut f32s: Vec<f32> = uniform_keys::<u32>(40_000, 5)
        .into_iter()
        .map(|k| (k as f32 / u32::MAX as f32 - 0.5) * 1e9)
        .collect();
    sorter.sort(&mut f32s);
    assert!(f32s.windows(2).all(|w| w[0] <= w[1]));

    let mut f64s: Vec<f64> = uniform_keys::<u64>(40_000, 6)
        .into_iter()
        .map(|k| (k as f64 / u64::MAX as f64 - 0.5) * 1e18)
        .collect();
    sorter.sort(&mut f64s);
    assert!(f64s.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn pair_sort_preserves_key_value_association_for_all_shapes() {
    let n = 50_000;
    // 32-bit keys with 32-bit values.
    let keys = uniform_keys::<u32>(n, 21);
    let mut sorted = keys.clone();
    let mut values: Vec<u32> = (0..n as u32).collect();
    HybridRadixSorter::new(SortConfig::pairs_32_32().scaled_for(n, 500_000_000))
        .sort_pairs(&mut sorted, &mut values);
    assert!(verify_indexed_pair_sort(&keys, &sorted, &values));

    // 64-bit keys with 64-bit values (values checked through u64 markers).
    let keys = uniform_keys::<u64>(n, 22);
    let mut sorted = keys.clone();
    let mut values: Vec<u64> = keys.iter().map(|&k| k ^ 0xABCD).collect();
    HybridRadixSorter::new(SortConfig::pairs_64_64().scaled_for(n, 125_000_000))
        .sort_pairs(&mut sorted, &mut values);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    for (k, v) in sorted.iter().zip(values.iter()) {
        assert_eq!(*k, *v ^ 0xABCD);
    }
}

#[test]
fn every_ablation_variant_produces_the_same_sorted_output() {
    let n = 50_000;
    let keys: Vec<u32> = Distribution::Entropy(EntropyLevel::with_and_count(2)).generate(n, 31);
    let expected = KeyCodec::std_sorted(&keys);
    for (name, opts) in Optimizations::ablation_variants() {
        let mut k = keys.clone();
        scaled_sorter_32(n).with_optimizations(opts).sort(&mut k);
        assert_eq!(k, expected, "ablation variant: {name}");
    }
}

#[test]
fn duplicate_heavy_inputs_and_edge_sizes() {
    let sorter = HybridRadixSorter::with_defaults();
    for n in [0usize, 1, 2, 3, 255, 256, 257, 4_095, 4_096] {
        let mut keys: Vec<u32> = (0..n).map(|i| (i % 7) as u32).collect();
        let expected = KeyCodec::std_sorted(&keys);
        sorter.sort(&mut keys);
        assert_eq!(keys, expected, "n = {n}");
    }
}

#[test]
fn report_statistics_are_internally_consistent() {
    let n = 80_000;
    let mut keys: Vec<u64> = Distribution::Entropy(EntropyLevel::with_and_count(1)).generate(n, 41);
    let report = scaled_sorter_64(n).sort(&mut keys);
    // Every key either went through a local sort or survived all passes.
    assert!(report.local.n_keys <= report.n);
    // Pass 0 processes the whole input.
    assert_eq!(report.passes[0].n_keys, report.n);
    // Later passes only process forwarded buckets.
    for w in report.passes.windows(2) {
        assert!(w[1].n_keys <= w[0].n_keys);
    }
    // Simulated breakdown adds up.
    let sum: f64 = report
        .simulated
        .kernels
        .iter()
        .map(|(_, t)| t.total.secs())
        .sum();
    assert!((sum - report.simulated.total.secs()).abs() < 1e-9);
    // The distribution is skewed, so the scatter look-ahead was active for
    // at least some blocks in the later passes.
    let lookahead_blocks: u64 = report
        .passes
        .iter()
        .map(|p| p.lookahead_active_blocks)
        .sum();
    assert!(lookahead_blocks > 0);
    let _ = workloads::stats::is_sorted(&keys);
}

#[test]
fn baselines_agree_with_the_hybrid_sort() {
    use hybrid_radix_sort::baselines::{
        GpuLsdRadixSort, GpuMergeSort, MultisplitRadixSort, ParadisSort,
    };
    let n = 40_000;
    let keys: Vec<u64> = Distribution::paper_zipf(3_000).generate(n, 55);
    let mut expected = keys.clone();
    HybridRadixSorter::with_defaults().sort(&mut expected);

    let mut a = keys.clone();
    GpuLsdRadixSort::cub_1_5_1().sort(&mut a);
    assert_eq!(a, expected);

    let mut b = keys.clone();
    GpuMergeSort::mgpu().sort(&mut b);
    assert_eq!(b, expected);

    let mut c = keys.clone();
    MultisplitRadixSort::paper().sort(&mut c);
    assert_eq!(c, expected);

    let mut d = keys.clone();
    ParadisSort::with_threads(4).sort(&mut d);
    assert_eq!(d, expected);
}
