//! Property-based tests over the core invariants: any input is sorted into a
//! permutation of itself, values follow their keys, codecs preserve order,
//! bucket classification conserves keys, multi-GPU shard boundaries
//! partition the key space, and the pipeline schedule respects its
//! dependencies.

use hybrid_radix_sort::hrs_core::bucket::{classify_sub_buckets, SubBucket};
use hybrid_radix_sort::hrs_core::{HybridRadixSorter, Optimizations, SortConfig};
use hybrid_radix_sort::multi_gpu::{compute_splitters, DevicePool, PartitionConfig, ShardedSorter};
use hybrid_radix_sort::prelude::SortKey;
use hybrid_radix_sort::workloads::{pairs::verify_indexed_pair_sort, KeyCodec};
use proptest::prelude::*;

fn tiny_config(local: usize, merge: usize, kpb: usize, digit_bits: u32) -> SortConfig {
    let mut cfg = SortConfig::keys_32();
    cfg.digit_bits = digit_bits;
    cfg.local_sort_threshold = local;
    cfg.merge_threshold = merge.min(local);
    cfg.keys_per_block = kpb;
    cfg.local_sort_classes = SortConfig::default_classes(local);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sorts_arbitrary_u32_inputs(keys in proptest::collection::vec(any::<u32>(), 0..3000),
                                  local in 4usize..600,
                                  kpb in 16usize..800,
                                  digit_bits in 2u32..9) {
        let cfg = tiny_config(local, local / 3 + 1, kpb, digit_bits);
        let mut sorted = keys.clone();
        HybridRadixSorter::new(cfg).sort(&mut sorted);
        prop_assert_eq!(sorted, KeyCodec::std_sorted(&keys));
    }

    #[test]
    fn sorts_arbitrary_u64_inputs_with_all_ablation_variants(
        keys in proptest::collection::vec(any::<u64>(), 0..1500),
        variant in 0usize..6,
    ) {
        let opts = Optimizations::ablation_variants()[variant].1;
        let cfg = tiny_config(128, 43, 96, 8);
        let mut sorted = keys.clone();
        HybridRadixSorter::new(cfg).with_optimizations(opts).sort(&mut sorted);
        prop_assert_eq!(sorted, KeyCodec::std_sorted(&keys));
    }

    #[test]
    fn sorts_arbitrary_signed_and_float_inputs(ints in proptest::collection::vec(any::<i64>(), 0..1200),
                                               floats in proptest::collection::vec(-1e12f64..1e12, 0..1200)) {
        let sorter = HybridRadixSorter::new(tiny_config(200, 67, 128, 8));
        let mut s = ints.clone();
        sorter.sort(&mut s);
        prop_assert_eq!(s, KeyCodec::std_sorted(&ints));
        let mut f = floats.clone();
        sorter.sort(&mut f);
        prop_assert!(f.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(f.len(), floats.len());
    }

    #[test]
    fn pair_sorts_preserve_association(keys in proptest::collection::vec(any::<u32>(), 1..2000)) {
        let mut sorted = keys.clone();
        let mut values: Vec<u32> = (0..keys.len() as u32).collect();
        HybridRadixSorter::new(tiny_config(150, 50, 100, 8)).sort_pairs(&mut sorted, &mut values);
        prop_assert!(verify_indexed_pair_sort(&keys, &sorted, &values));
    }

    #[test]
    fn codec_round_trips_and_preserves_order(a in any::<f64>().prop_filter("no NaN", |v| !v.is_nan()),
                                             b in any::<f64>().prop_filter("no NaN", |v| !v.is_nan()),
                                             x in any::<i64>(), y in any::<i64>()) {
        prop_assert_eq!(f64::from_radix(a.to_radix()).to_bits(), a.to_bits());
        prop_assert_eq!(i64::from_radix(x.to_radix()), x);
        if a < b {
            prop_assert!(a.to_radix() < b.to_radix());
        }
        if x < y {
            prop_assert!(x.to_radix() < y.to_radix());
        }
    }

    #[test]
    fn bucket_classification_conserves_keys_and_respects_thresholds(
        lens in proptest::collection::vec(0usize..5000, 0..64),
        local in 64usize..4000,
    ) {
        let merge = local / 3;
        let mut offset = 0usize;
        let subs: Vec<SubBucket> = lens.iter().map(|&len| {
            let sb = SubBucket { offset, len };
            offset += len;
            sb
        }).collect();
        let mut next_id = 0;
        let c = classify_sub_buckets(&subs, 1, local, merge, true, &mut next_id);
        let total_in: usize = lens.iter().sum();
        let total_out: usize = c.local.iter().map(|l| l.len).sum::<usize>()
            + c.counting.iter().map(|b| b.len).sum::<usize>();
        prop_assert_eq!(total_in, total_out);
        // Counting buckets are the ones that exceeded the local threshold.
        for b in &c.counting {
            prop_assert!(b.len > local);
        }
        // Merged buckets never exceed the merge threshold.
        for l in &c.local {
            if l.is_merged() {
                prop_assert!(l.len < merge);
            }
            prop_assert!(l.len <= local);
        }
    }

    #[test]
    fn shard_boundaries_partition_the_key_space(
        keys in proptest::collection::vec(any::<u32>(), 0..4000),
        shards in 2usize..9,
        heavy_weight in 1usize..5,
    ) {
        // Heterogeneous capacity weights: the first device is up to 4x the
        // rest.
        let mut weights = vec![1.0; shards];
        weights[0] = heavy_weight as f64;
        let s = compute_splitters(&keys, &weights, &PartitionConfig::default());
        prop_assert!(s.validate().is_ok(), "{:?}", s.validate());
        // The inclusive ranges tile [0, max_radix] with no gaps or
        // overlaps, regardless of the input's shape.
        let ranges = s.ranges();
        prop_assert_eq!(ranges.len(), shards);
        prop_assert_eq!(ranges[0].0, 0);
        prop_assert_eq!(ranges.last().unwrap().1, u32::MAX as u64);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].1 + 1, w[1].0);
        }
        // Every key lands in exactly the shard whose range contains it, and
        // the shard populations sum back to the input size.
        let mut counts = vec![0usize; shards];
        for k in &keys {
            let shard = s.shard_of(k.to_radix());
            let (lo, hi) = ranges[shard];
            prop_assert!(k.to_radix() >= lo && k.to_radix() <= hi);
            counts[shard] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), keys.len());
    }

    #[test]
    fn sharded_sort_matches_std_sort(
        keys in proptest::collection::vec(any::<u32>(), 0..3000),
        devices in 1usize..5,
    ) {
        let gpu = HybridRadixSorter::new(tiny_config(128, 43, 96, 8));
        let sorter = ShardedSorter::new(DevicePool::titan_cluster(devices))
            .with_sorter(gpu)
            .with_merge_threads(2);
        let mut sorted = keys.clone();
        let report = sorter.sort(&mut sorted);
        prop_assert_eq!(sorted, KeyCodec::std_sorted(&keys));
        prop_assert_eq!(report.n as usize, keys.len());
        prop_assert_eq!(report.shards.iter().map(|s| s.n).sum::<u64>() as usize, keys.len());
    }

    #[test]
    fn merge_of_sorted_runs_is_sorted_permutation(
        runs in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..400), 1..8),
        threads in 1usize..6,
    ) {
        use hybrid_radix_sort::hetero::parallel_merge_sorted_runs;
        let sorted_runs: Vec<Vec<u64>> = runs.iter().map(|r| {
            let mut s = r.clone();
            s.sort_unstable();
            s
        }).collect();
        let refs: Vec<&[u64]> = sorted_runs.iter().map(|r| r.as_slice()).collect();
        let merged = parallel_merge_sorted_runs(&refs, threads);
        let mut expected: Vec<u64> = runs.concat();
        expected.sort_unstable();
        prop_assert_eq!(merged, expected);
    }
}
