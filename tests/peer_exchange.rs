//! Cross-strategy equivalence suite for the recombination phase: the
//! peer-exchange path (`RecombineStrategy::PeerExchange`), the default
//! host p-way merge (`RecombineStrategy::HostMerge`) and the standard
//! library sort must all agree on every output — for plain keys, pairs,
//! batches and the out-of-core lane, across uniform / zipf / sorted /
//! duplicate-heavy inputs and 1/2/4/8-device pools, including skewed
//! capacity weights and shards that receive zero keys.
//!
//! The exchange path may differ in *schedule* (that is the point), never
//! in *bytes*.

use hybrid_radix_sort::gpu_sim::{DeviceSpec, LinkSpec, PeerTopology};
use hybrid_radix_sort::multi_gpu::{DevicePool, ShardedSorter};
use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::workloads::{uniform_keys, KeyCodec, ZipfGenerator};
use proptest::prelude::*;

/// A sharded sorter over an NVLink mesh, forced onto the peer-exchange
/// recombination, with the on-GPU config scaled down to test-sized inputs.
fn exchange_sorter(p: usize) -> ShardedSorter {
    let gpu = HybridRadixSorter::new(SortConfig::keys_64().scaled_for(50_000, 250_000_000));
    ShardedSorter::new(DevicePool::nvlink_mesh_cluster(p))
        .with_sorter(gpu)
        .with_merge_threads(4)
        .with_recombine_strategy(RecombineStrategy::PeerExchange)
}

/// The host-merge baseline on the same device class (PCIe titan cluster,
/// no peer links — the pre-exchange engine, byte for byte).
fn host_sorter(p: usize) -> ShardedSorter {
    let gpu = HybridRadixSorter::new(SortConfig::keys_64().scaled_for(50_000, 250_000_000));
    ShardedSorter::new(DevicePool::titan_cluster(p))
        .with_sorter(gpu)
        .with_merge_threads(4)
        .with_recombine_strategy(RecombineStrategy::HostMerge)
}

/// The four input shapes the suite sweeps: uniform, the paper's zipf,
/// pre-sorted, and duplicate-heavy (keys folded into 16 distinct values).
fn generate(shape: usize, n: usize, seed: u64) -> Vec<u64> {
    match shape {
        0 => uniform_keys::<u64>(n, seed),
        1 => ZipfGenerator::paper_keys::<u64>(n, seed),
        2 => {
            let mut k = uniform_keys::<u64>(n, seed);
            k.sort_unstable();
            k
        }
        _ => uniform_keys::<u64>(n, seed)
            .into_iter()
            .map(|k| (k % 16) << 60)
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Keys: peer-exchange ≡ host-merge ≡ std, over every pool size the
    /// issue names and every input shape.
    #[test]
    fn key_sorts_agree_across_strategies(
        n in 2_000usize..40_000,
        p_idx in 0usize..4,
        shape in 0usize..4,
        seed in any::<u64>(),
    ) {
        let p = [1usize, 2, 4, 8][p_idx];
        let keys = generate(shape, n, seed);
        let reference = KeyCodec::std_sorted(&keys);

        let mut via_host = keys.clone();
        let host_report = host_sorter(p).sort(&mut via_host);
        prop_assert_eq!(&via_host, &reference);
        prop_assert_eq!(host_report.recombine, RecombineStrategy::HostMerge);
        prop_assert!(host_report.exchange.is_empty());

        let mut via_peers = keys;
        let peer_report = exchange_sorter(p).sort(&mut via_peers);
        prop_assert_eq!(&via_peers, &reference);
        prop_assert_eq!(peer_report.n, n as u64);
        prop_assert_eq!(peer_report.recombine, RecombineStrategy::PeerExchange);
        let invariants = peer_report.span_invariants();
        prop_assert!(invariants.is_ok(), "exchange span invariants: {:?}", invariants);
    }

    /// Pairs: the permutation applied to the values is the same sort in
    /// both strategies — every value still rides its key.
    #[test]
    fn pair_sorts_agree_across_strategies(
        n in 1_000usize..25_000,
        p_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let p = [2usize, 4, 8][p_idx];
        let keys = uniform_keys::<u64>(n, seed);
        let tags: Vec<u64> = keys.iter().map(|&k| !k).collect();
        let reference = KeyCodec::std_sorted(&keys);

        let (mut hk, mut hv) = (keys.clone(), tags.clone());
        host_sorter(p).sort_pairs(&mut hk, &mut hv);
        let (mut pk, mut pv) = (keys, tags);
        exchange_sorter(p).sort_pairs(&mut pk, &mut pv);

        prop_assert_eq!(&pk, &reference);
        prop_assert_eq!(&pk, &hk);
        prop_assert!(pk.iter().zip(&pv).all(|(&k, &v)| v == !k),
            "a value came unglued from its key in the exchange");
        prop_assert!(hk.iter().zip(&hv).all(|(&k, &v)| v == !k));
    }

    /// Batches: request spans are offset bookkeeping over the same sorted
    /// output, so the concatenated batch must agree too.
    #[test]
    fn batch_sorts_agree_across_strategies(
        lens in proptest::collection::vec(500usize..6_000, 1..5),
        seed in any::<u64>(),
    ) {
        let mut keys = Vec::new();
        for (i, &len) in lens.iter().enumerate() {
            keys.extend(uniform_keys::<u64>(len, seed ^ i as u64));
        }
        let reference = KeyCodec::std_sorted(&keys);

        let mut via_host = keys.clone();
        let hr = host_sorter(4).sort_batch(&mut via_host, &lens);
        let mut via_peers = keys;
        let pr = exchange_sorter(4).sort_batch(&mut via_peers, &lens);

        prop_assert_eq!(&via_peers, &reference);
        prop_assert_eq!(&via_host, &reference);
        prop_assert_eq!(pr.requests.len(), lens.len());
        prop_assert_eq!(hr.requests.len(), lens.len());
        for (a, b) in pr.requests.iter().zip(&hr.requests) {
            prop_assert_eq!(a.offset, b.offset);
            prop_assert_eq!(a.len, b.len);
        }
    }

    /// Out-of-core: the chunk-streamed lane always recombines on the host
    /// (its tail merge overlaps the chunk stream instead), and setting the
    /// peer-exchange strategy on the engine must not disturb it.
    #[test]
    fn out_of_core_is_unaffected_by_the_strategy(
        n in 60_000usize..120_000,
        seed in any::<u64>(),
    ) {
        let mut spec = DeviceSpec::titan_x_pascal();
        spec.device_memory_bytes = 1 << 20;
        let pool = DevicePool::homogeneous(2, SimDevice::on_pcie3(spec))
            .with_peer_topology(PeerTopology::nvlink_mesh(2, LinkSpec::nvlink2()));
        let keys = uniform_keys::<u64>(n, seed);
        let reference = KeyCodec::std_sorted(&keys);
        let mut sorted = keys;
        let report = ShardedSorter::new(pool)
            .with_recombine_strategy(RecombineStrategy::PeerExchange)
            .try_sort_out_of_core(&mut sorted)
            .expect("ooc lane must not fail without faults");
        prop_assert_eq!(&sorted, &reference);
        prop_assert!(report.is_out_of_core());
        // The ooc lane reports the strategy it actually used.
        prop_assert_eq!(report.recombine, RecombineStrategy::HostMerge);
        prop_assert!(report.exchange.is_empty());
    }
}

/// Skewed capacity weights: a P100 next to a GTX 980 over a duplex NVLink
/// pair carves very unequal slabs, and the exchange must still tile the
/// key space exactly.
#[test]
fn skewed_pool_agrees_with_host_merge_and_reference() {
    let topo = PeerTopology::through_host(2).with_duplex_link(0, 1, LinkSpec::nvlink2());
    let pool = DevicePool::new(vec![
        SimDevice::on_nvlink2(DeviceSpec::tesla_p100()),
        SimDevice::on_pcie3(DeviceSpec::gtx_980()),
    ])
    .with_peer_topology(topo);
    let gpu = HybridRadixSorter::new(SortConfig::keys_64().scaled_for(75_000, 250_000_000));
    let keys = ZipfGenerator::paper_keys::<u64>(140_000, 27);
    let reference = KeyCodec::std_sorted(&keys);

    let mut via_host = keys.clone();
    host_sorter(2).sort(&mut via_host);
    assert_eq!(via_host, reference);

    let mut via_peers = keys;
    let report = ShardedSorter::new(pool)
        .with_sorter(gpu)
        .with_merge_threads(4)
        .with_recombine_strategy(RecombineStrategy::PeerExchange)
        .sort(&mut via_peers);
    assert_eq!(via_peers, reference);
    assert!(
        report.exchange.iter().all(|x| x.direct),
        "the duplex NVLink pair must carry every transfer directly"
    );
    report.span_invariants().expect("monotone spans");
}

/// A constant-key input collapses every splitter onto one value: all but
/// one bucket is empty, so most devices contribute zero keys to most
/// destinations — and at least one shard ends up with zero output keys.
#[test]
fn zero_key_shards_are_legal_in_the_exchange() {
    let keys = vec![0xDEAD_BEEF_u64; 30_000];
    let mut sorted = keys.clone();
    let report = exchange_sorter(4).sort(&mut sorted);
    assert_eq!(sorted, keys, "constant input is already sorted");
    assert_eq!(report.shards.iter().map(|s| s.n).sum::<u64>(), 30_000);
    assert!(
        report.shards.iter().any(|s| s.n == 0),
        "a constant input must starve at least one shard"
    );
    report.span_invariants().expect("monotone spans");

    // The empty edge cases hold too.
    let mut empty: Vec<u64> = Vec::new();
    let r = exchange_sorter(4).sort(&mut empty);
    assert!(empty.is_empty());
    assert_eq!(r.n, 0);
    let mut one = vec![42u64];
    exchange_sorter(8).sort(&mut one);
    assert_eq!(one, vec![42]);
}

/// `Auto` resolves through the cost model: on an 8-device NVLink mesh the
/// exchange wins; on a single device there is nothing to exchange.
#[test]
fn auto_strategy_is_equivalent_and_resolves_sensibly() {
    let keys = uniform_keys::<u64>(200_000, 31);
    let reference = KeyCodec::std_sorted(&keys);
    let gpu = HybridRadixSorter::new(SortConfig::keys_64().scaled_for(50_000, 250_000_000));

    let mut on_mesh = keys.clone();
    let report = ShardedSorter::new(DevicePool::nvlink_mesh_cluster(8))
        .with_sorter(gpu.clone())
        .with_merge_threads(4)
        .with_recombine_strategy(RecombineStrategy::Auto)
        .sort(&mut on_mesh);
    assert_eq!(on_mesh, reference);
    assert_eq!(
        report.recombine,
        RecombineStrategy::PeerExchange,
        "an 8-device NVLink mesh must beat the host merge in the cost model"
    );

    let mut solo = keys;
    let report = ShardedSorter::new(DevicePool::nvlink_mesh_cluster(1))
        .with_sorter(gpu)
        .with_recombine_strategy(RecombineStrategy::Auto)
        .sort(&mut solo);
    assert_eq!(solo, reference);
    assert_eq!(report.recombine, RecombineStrategy::HostMerge);
}
