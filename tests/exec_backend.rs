//! Integration tests of the execution backends: the `Threaded` and
//! `Sequential` executors must produce exactly the output of `std` sorting
//! for arbitrary inputs, key-only and key-value, across worker counts; and
//! repeated sorts through one sorter must reuse the scratch arena instead
//! of allocating.

use hybrid_radix_sort::hrs_core::{Executor, HybridRadixSorter, SortConfig};
use hybrid_radix_sort::multi_gpu::{compute_splitters, scatter_into_shards, PartitionConfig};
use hybrid_radix_sort::workloads::{pairs::verify_indexed_pair_sort, KeyCodec, SortKey};
use proptest::prelude::*;

/// Worker counts every property is exercised under (1 = the `Threaded`
/// backend degenerating to a single worker; Sequential is the baseline).
const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

fn tiny_config(local: usize, kpb: usize, digit_bits: u32) -> SortConfig {
    let mut cfg = SortConfig::keys_32();
    cfg.digit_bits = digit_bits;
    cfg.local_sort_threshold = local;
    cfg.merge_threshold = local / 3 + 1;
    cfg.keys_per_block = kpb;
    cfg.local_sort_classes = SortConfig::default_classes(local);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn threaded_matches_std_sort_for_u32_keys(
        keys in proptest::collection::vec(any::<u32>(), 0..4000),
        local in 8usize..500,
        kpb in 16usize..700,
    ) {
        let expected = KeyCodec::std_sorted(&keys);
        let cfg = tiny_config(local, kpb, 8);
        let mut seq = keys.clone();
        HybridRadixSorter::new(cfg.clone())
            .with_executor(Executor::Sequential)
            .sort(&mut seq);
        prop_assert_eq!(&seq, &expected);
        for workers in WORKER_COUNTS {
            let mut thr = keys.clone();
            HybridRadixSorter::new(cfg.clone())
                .with_executor(Executor::with_workers(workers))
                .sort(&mut thr);
            prop_assert_eq!(&thr, &expected, "workers = {}", workers);
        }
    }

    #[test]
    fn threaded_matches_std_sort_for_u64_keys(
        keys in proptest::collection::vec(any::<u64>(), 0..2500),
        workers_idx in 0usize..3,
    ) {
        let expected = KeyCodec::std_sorted(&keys);
        let cfg = tiny_config(96, 64, 8);
        let mut thr = keys.clone();
        HybridRadixSorter::new(cfg)
            .with_executor(Executor::with_workers(WORKER_COUNTS[workers_idx]))
            .sort(&mut thr);
        prop_assert_eq!(thr, expected);
    }

    #[test]
    fn threaded_pairs_match_sequential_pairs(
        keys in proptest::collection::vec(any::<u32>(), 0..2000),
        workers_idx in 0usize..3,
    ) {
        let n = keys.len();
        let values: Vec<u32> = (0..n as u32).collect();
        let cfg = tiny_config(128, 96, 8);

        let mut seq_keys = keys.clone();
        let mut seq_vals = values.clone();
        HybridRadixSorter::new(cfg.clone())
            .with_executor(Executor::Sequential)
            .sort_pairs(&mut seq_keys, &mut seq_vals);
        prop_assert!(verify_indexed_pair_sort(&keys, &seq_keys, &seq_vals));

        let mut thr_keys = keys.clone();
        let mut thr_vals = values;
        HybridRadixSorter::new(cfg)
            .with_executor(Executor::with_workers(WORKER_COUNTS[workers_idx]))
            .sort_pairs(&mut thr_keys, &mut thr_vals);
        prop_assert!(verify_indexed_pair_sort(&keys, &thr_keys, &thr_vals));
        // Keys sort identically; values may differ only within equal-key
        // runs, which verify_indexed_pair_sort already validates.
        prop_assert_eq!(seq_keys, thr_keys);
    }

    #[test]
    fn parallel_partition_scatter_matches_sequential(
        keys in proptest::collection::vec(any::<u64>(), 0..3000),
        shards in 2usize..6,
    ) {
        let splitters = compute_splitters(&keys, &vec![1.0; shards], &PartitionConfig::default());
        let mut k = keys.clone();
        let mut v: Vec<()> = Vec::new();
        let (seq, _) = scatter_into_shards(&mut k, &mut v, &splitters, &Executor::Sequential);
        let mut k = keys.clone();
        let mut v: Vec<()> = Vec::new();
        let (par, _) = scatter_into_shards(&mut k, &mut v, &splitters, &Executor::with_workers(3));
        prop_assert_eq!(seq, par);
    }
}

#[test]
fn arena_capacity_is_stable_across_repeated_sorts() {
    // The zero-steady-state-allocation regression check over the public
    // API: a warmed-up sorter retains exactly the same arena footprint no
    // matter how many more times it sorts the same-sized input.
    let keys: Vec<u64> = hybrid_radix_sort::workloads::uniform_keys(120_000, 5);
    for workers in WORKER_COUNTS {
        let sorter = HybridRadixSorter::new(SortConfig::keys_64().scaled_for(120_000, 250_000_000))
            .with_executor(Executor::with_workers(workers));
        let mut warm = keys.clone();
        sorter.sort(&mut warm);
        let baseline = sorter.arena_stats();
        assert!(baseline.total_bytes() > 0);
        for _ in 0..3 {
            let mut k = keys.clone();
            sorter.sort(&mut k);
            assert_eq!(
                sorter.arena_stats(),
                baseline,
                "arena grew on a repeated sort (workers = {workers})"
            );
        }
    }
}

#[test]
fn staging_segments_are_a_warm_fixed_point() {
    // The write-combining scatter parks its per-worker staging segments in
    // the arena like the spare halves: after the warm-up sort they are a
    // fixed point too — staging adds zero steady-state allocations.
    use hybrid_radix_sort::hrs_core::Optimizations;
    let keys: Vec<u32> = hybrid_radix_sort::workloads::uniform_keys(90_000, 9);
    let cfg = SortConfig::pairs_32_32().scaled_for(90_000, 500_000_000);
    for workers in WORKER_COUNTS {
        let staged =
            HybridRadixSorter::new(cfg.clone()).with_executor(Executor::with_workers(workers));
        let unstaged = HybridRadixSorter::new(cfg.clone())
            .with_executor(Executor::with_workers(workers))
            .with_optimizations(Optimizations::unstaged_baseline());
        for sorter in [&staged, &unstaged] {
            let mut k = keys.clone();
            let mut v: Vec<u32> = (0..90_000).collect();
            sorter.sort_pairs(&mut k, &mut v);
        }
        // The staged sorter retains strictly more buffer bytes: the key and
        // value staging segments on top of the spare halves.
        let warm = staged.arena_stats();
        assert!(
            warm.buffer_bytes > unstaged.arena_stats().buffer_bytes,
            "staging segments missing from the warm arena (workers = {workers})"
        );
        for _ in 0..3 {
            let mut k = keys.clone();
            let mut v: Vec<u32> = (0..90_000).collect();
            staged.sort_pairs(&mut k, &mut v);
            assert_eq!(
                staged.arena_stats(),
                warm,
                "staging segment grew on a repeated sort (workers = {workers})"
            );
        }
    }
}

#[test]
fn executors_agree_on_every_key_width() {
    fn check<K: SortKey>(make: impl Fn(u64) -> K) {
        let keys: Vec<K> = (0..9_000u64)
            .map(|i| make(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        let expected = KeyCodec::std_sorted(&keys);
        for workers in WORKER_COUNTS {
            let mut k = keys.clone();
            HybridRadixSorter::new(tiny_config(200, 128, 8))
                .with_executor(Executor::with_workers(workers))
                .sort(&mut k);
            assert_eq!(k, expected, "workers = {workers}");
        }
    }
    check::<u8>(|v| v as u8);
    check::<u16>(|v| v as u16);
    check::<u32>(|v| v as u32);
    check::<u64>(|v| v);
}
