//! Reproduces the Table 2 walkthrough end to end: sorting sixteen 4-bit keys
//! with 2-bit digits and a local-sort threshold of three keys must produce
//! the histogram 4 8 2 2, the prefix sum 0 4 12 14 and the fully sorted
//! base-4 sequence the paper lists.

use hybrid_radix_sort::experiments::figures::table2_trace;

#[test]
fn table2_trace_matches_the_paper() {
    let trace = table2_trace();
    assert!(trace.contains("histogram  4 8 2 2"), "{trace}");
    assert!(trace.contains("prefix-sum 0 4 12 14"), "{trace}");
    // Second pass: bucket 0 (4 keys) and bucket 1 (8 keys) are partitioned
    // again, buckets 2 and 3 (2 keys each) are local-sorted.
    assert!(trace.contains("local sort"), "{trace}");
    assert!(
        trace.contains("final: 00 01 03 03 10 10 11 12 12 12 12 13 22 23 31 31"),
        "{trace}"
    );
}
