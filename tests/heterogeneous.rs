//! Integration tests of the heterogeneous (out-of-core) sorting pipeline:
//! functional correctness, pipeline overlap and the in-place replacement
//! memory plan.

use hybrid_radix_sort::gpu_sim::{DeviceMemoryPlanner, SimTime};
use hybrid_radix_sort::hetero::{
    parallel_merge_sorted_runs, split_into_chunks, HeterogeneousSorter, PipelineConfig,
    PipelineSchedule,
};
use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::workloads::{uniform_keys, Distribution, KeyCodec};

fn sorter() -> HeterogeneousSorter {
    let gpu = HybridRadixSorter::new(SortConfig::keys_64().scaled_for(30_000, 250_000_000));
    HeterogeneousSorter::with_defaults()
        .with_gpu_sorter(gpu)
        .with_merge_threads(4)
}

#[test]
fn heterogeneous_sort_is_correct_for_skewed_inputs() {
    let keys: Vec<u64> = Distribution::paper_zipf(50_000).generate(150_000, 1);
    let expected = KeyCodec::std_sorted(&keys);
    for s in [2usize, 4, 7] {
        let mut k = keys.clone();
        let report = sorter().sort(&mut k, s);
        assert_eq!(k, expected, "s = {s}");
        assert_eq!(report.chunks, s);
        // The pipelined chunked sort is never slower than the sum of all
        // stages executed sequentially.
        let sequential = report.breakdown.total_htod
            + report.breakdown.total_gpu_sort
            + report.breakdown.total_dtoh;
        assert!(report.breakdown.chunked_sort.secs() <= sequential.secs() + 1e-9);
    }
}

#[test]
fn pipeline_overlap_shrinks_with_more_chunks_and_stays_above_the_transfer_bound() {
    let s = sorter();
    let input_bytes = 6_000_000_000u64;
    let gpu_time = SimTime::from_millis(330.0);
    let mut last = f64::INFINITY;
    for chunks in [1usize, 2, 4, 8, 16] {
        let b = s.simulate_end_to_end(input_bytes, chunks, gpu_time, SimTime::ZERO);
        assert!(b.chunked_sort.secs() <= last + 1e-9, "chunks = {chunks}");
        // Never faster than a single one-way transfer of the whole input.
        assert!(b.chunked_sort.secs() >= b.total_htod.secs() * 0.999);
        last = b.chunked_sort.secs();
    }
}

#[test]
fn figure_8_shape_chunked_sort_beats_naive_cub_upload_sort_download() {
    let s = sorter();
    let input_bytes = 6_000_000_000u64;
    let hrs_gpu = SimTime::from_millis(330.0);
    let cub_gpu = SimTime::from_millis(636.0);
    let naive_cub = s.naive("CUB", input_bytes, cub_gpu);
    let naive_hrs = s.naive("HRS", input_bytes, hrs_gpu);
    let pipelined = s.simulate_end_to_end(input_bytes, 16, hrs_gpu, SimTime::ZERO);
    // Figure 8: the chunked sort (even before merging) beats both naive
    // approaches, and naive HRS beats naive CUB.
    assert!(pipelined.chunked_sort < naive_hrs.total());
    assert!(naive_hrs.total() < naive_cub.total());
    // The chunked sort should be within ~35 % of the single HtD transfer.
    assert!(pipelined.chunked_sort.secs() < naive_hrs.htod.secs() * 1.35);
}

#[test]
fn in_place_replacement_allows_larger_chunks_than_four_slots() {
    let planner = DeviceMemoryPlanner::new(12 * 1024 * 1024 * 1024);
    let three = planner.max_chunk_bytes(3, 0.05);
    let four = planner.max_chunk_bytes(4, 0.05);
    assert!(three > four);
    // Three-slot chunks of ~4 GB allow 64 GB in 16 chunks; the four-slot
    // plan needs more chunks (more merge runs for the CPU).
    assert!(three >= 4_000_000_000);
    assert!(four < 3_300_000_000);
}

#[test]
fn chunk_plan_and_parallel_merge_compose() {
    let keys = uniform_keys::<u64>(90_001, 5);
    let plan = split_into_chunks(keys.len(), 5);
    assert_eq!(plan.total_len(), keys.len());
    let mut runs: Vec<Vec<u64>> = plan
        .ranges
        .iter()
        .map(|&(s, e)| {
            let mut c = keys[s..e].to_vec();
            c.sort_unstable();
            c
        })
        .collect();
    runs.retain(|r| !r.is_empty());
    let refs: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
    let merged = parallel_merge_sorted_runs(&refs, 3);
    assert_eq!(merged, KeyCodec::std_sorted(&keys));
}

#[test]
fn pipeline_schedule_respects_resource_exclusivity() {
    let cfg = PipelineConfig::default();
    let chunk_bytes = vec![500_000_000u64; 6];
    let sort_times = vec![SimTime::from_millis(40.0); 6];
    let sched = PipelineSchedule::build(&cfg, &chunk_bytes, &sort_times, SimTime::ZERO);
    // Events on the same resource never overlap.
    let events = sched.timeline.events();
    for a in events {
        for b in events {
            if a != b && a.resource == b.resource {
                assert!(
                    a.end.secs() <= b.start.secs() + 1e-12
                        || b.end.secs() <= a.start.secs() + 1e-12,
                    "overlap: {a:?} vs {b:?}"
                );
            }
        }
    }
    // Sorts start only after their upload finished.
    for i in 0..6 {
        let up = events
            .iter()
            .find(|e| e.label == format!("HtD chunk {i}"))
            .unwrap();
        let sort = events
            .iter()
            .find(|e| e.label == format!("sort chunk {i}"))
            .unwrap();
        let down = events
            .iter()
            .find(|e| e.label == format!("DtH chunk {i}"))
            .unwrap();
        assert!(sort.start >= up.end);
        assert!(down.start >= sort.end);
    }
}
