//! Chaos and fault-tolerance tests: injected device failures, shard
//! corruption, transfer stalls and engine panics, driven through both the
//! sharded engine (`try_sort*`) and the full sort service.
//!
//! The contract under test, end to end: **under any injected single-device
//! failure with at least two survivors, every request either completes
//! with output identical to a reference sort or resolves to a typed
//! error — no hangs, no silent corruption, no escaping panics** — and the
//! `ShardedReport` / telemetry record each fault with the requeue that
//! resolved it.
//!
//! The CI chaos matrix reruns this file under several `CHAOS_SEED` values;
//! see `chaos_seed_scenario_is_deterministic` and its peer-exchange twin
//! `exchange_chaos_seed_scenario_is_deterministic`, which drives the same
//! seeded plans through the all-to-all bucket exchange (where faults can
//! land *mid-exchange*, after a device has already sorted its slab).

use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::sort_service::FlushReason;
use hybrid_radix_sort::workloads::{uniform_keys, KeyCodec};
use proptest::prelude::*;
use std::time::Duration;

/// A generous bound on how long any single request may take to resolve.
/// Nothing in these tests sleeps anywhere near this long; hitting it means
/// a hang, which is exactly what the suite exists to rule out.
const NEVER_HANGS: Duration = Duration::from_secs(120);

fn sorted_multiset(mut v: Vec<u64>) -> Vec<u64> {
    v.sort_unstable();
    v
}

fn tiny_memory_pool(p: usize, memory: u64) -> DevicePool {
    let mut spec = DeviceSpec::titan_x_pascal();
    spec.device_memory_bytes = memory;
    DevicePool::homogeneous(p, SimDevice::on_pcie3(spec))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Engine-level chaos: a randomly seeded fault plan (device failures,
    /// corruption, stalls — no panics here; those get their own test)
    /// against random pool sizes and inputs.  Recovery must either produce
    /// the reference sort or fail with a typed error that loses nothing.
    #[test]
    fn engine_survives_random_fault_plans(
        n in 1_000usize..15_000,
        p in 2usize..5,
        seed in any::<u64>(),
        key_seed in any::<u64>(),
    ) {
        let plan = FaultPlan::seeded(seed, p, 3, 2);
        let sorter = ShardedSorter::new(DevicePool::titan_cluster(p))
            .with_fault_plan(plan.clone());
        let keys = uniform_keys::<u64>(n, key_seed);
        let mut sorted = keys.clone();
        match sorter.try_sort(&mut sorted) {
            Ok(report) => {
                prop_assert_eq!(&sorted, &KeyCodec::std_sorted(&keys));
                prop_assert_eq!(report.n, n as u64);
                // Every recorded fault carries the requeue that resolved
                // it (stalls requeue nothing but are still recorded).
                for ev in &report.faults {
                    prop_assert!(ev.recovered);
                    prop_assert!(ev.device < p);
                }
            }
            Err(err) => {
                // Typed failure: nothing lost, nothing corrupted.
                prop_assert!(matches!(
                    err,
                    SortError::AllDevicesDead { .. } | SortError::RetriesExhausted { .. }
                ));
                prop_assert_eq!(sorted_multiset(sorted), sorted_multiset(keys));
            }
        }
    }

    /// Service-level chaos: every ticket resolves within a bounded wait —
    /// to a correct outcome or a typed error — under a random fault plan.
    #[test]
    fn service_requests_always_resolve(seed in any::<u64>()) {
        let plan = FaultPlan::seeded(seed, 3, 2, 2);
        let sorter = ShardedSorter::new(DevicePool::titan_cluster(3)).with_fault_plan(plan);
        let service = SortService::start(
            sorter,
            ServiceConfig::default().with_max_linger(Duration::from_millis(5)),
        );
        let inputs: Vec<Vec<u64>> = (0..4)
            .map(|i| uniform_keys::<u64>(4_000, seed ^ i))
            .collect();
        let mut tickets = Vec::new();
        for keys in &inputs {
            match service.submit(SortPayload::U64Keys(keys.clone())) {
                Ok(t) => tickets.push(Some(t)),
                // Degraded-mode shedding is a legal resolution too.
                Err(SubmitError::Degraded { .. }) => tickets.push(None),
                Err(other) => panic!("unexpected rejection: {other}"),
            }
        }
        for (mut ticket, keys) in tickets.into_iter().flatten().zip(inputs) {
            match ticket.wait_timeout(NEVER_HANGS) {
                Ok(Some(outcome)) => {
                    let SortPayload::U64Keys(sorted) = outcome.payload else {
                        panic!("wrong payload variant")
                    };
                    prop_assert_eq!(sorted, KeyCodec::std_sorted(&keys));
                }
                Ok(None) => panic!("request hung past the wait bound"),
                Err(e) => prop_assert!(
                    matches!(
                        e,
                        TicketError::SortFailed(_)
                            | TicketError::WorkerFailed
                            | TicketError::ServiceDropped
                    ),
                    "unexpected ticket error: {}",
                    e
                ),
            }
        }
        service.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Exchange-phase chaos: the peer-exchange recombination consumes up
    /// to two fault-plan ops per device per round (op 0 at the local
    /// sort, op 1 mid-exchange), so a `max_op` of 4 reaches every phase —
    /// devices die *holding sorted slabs*, transfers stall mid-flight,
    /// shards corrupt after the exchange started.  Same contract as the
    /// host-merge path: reference output or typed error, never a hang.
    #[test]
    fn exchange_engine_survives_random_fault_plans(
        n in 1_000usize..15_000,
        p in 2usize..5,
        seed in any::<u64>(),
        key_seed in any::<u64>(),
    ) {
        let plan = FaultPlan::seeded(seed, p, 4, 2);
        let sorter = ShardedSorter::new(DevicePool::nvlink_mesh_cluster(p))
            .with_recombine_strategy(RecombineStrategy::PeerExchange)
            .with_fault_plan(plan);
        let keys = uniform_keys::<u64>(n, key_seed);
        let mut sorted = keys.clone();
        match sorter.try_sort(&mut sorted) {
            Ok(report) => {
                prop_assert_eq!(&sorted, &KeyCodec::std_sorted(&keys));
                prop_assert_eq!(report.n, n as u64);
                prop_assert_eq!(report.recombine, RecombineStrategy::PeerExchange);
                for ev in &report.faults {
                    prop_assert!(ev.recovered);
                    prop_assert!(ev.device < p);
                }
            }
            Err(err) => {
                prop_assert!(matches!(
                    err,
                    SortError::AllDevicesDead { .. } | SortError::RetriesExhausted { .. }
                ));
                prop_assert_eq!(sorted_multiset(sorted), sorted_multiset(keys));
            }
        }
    }
}

/// A device dies *mid-exchange* — after sorting its slab, while peers are
/// pulling buckets from it.  The slab requeues onto the survivors, buckets
/// already destined to the dead device become orphan runs on their
/// sources, and the output still matches the reference exactly.
#[test]
fn device_dies_mid_exchange_and_the_pool_recovers() {
    let sorter = ShardedSorter::new(DevicePool::nvlink_mesh_cluster(3))
        .with_recombine_strategy(RecombineStrategy::PeerExchange)
        .with_fault_plan(FaultPlan::fail_device(1, 1));
    let pool = sorter.pool().clone();
    let keys = uniform_keys::<u64>(24_000, 37);
    let mut sorted = keys.clone();
    let report = sorter
        .try_sort(&mut sorted)
        .expect("two survivors must recover");
    assert_eq!(sorted, KeyCodec::std_sorted(&keys));
    assert!(!pool.alive(1), "the engine must mark the device dead");
    assert!(report.had_faults());
    assert!(report.requeued_elements() > 0);
    assert!(report.faults.iter().all(|ev| ev.recovered));
}

/// A transfer stall mid-exchange slows the schedule but loses nothing:
/// output identical, the stall recorded, and the simulated end-to-end
/// strictly worse than the same plan with the stall spec never firing.
#[test]
fn transfer_stall_mid_exchange_only_costs_time() {
    let keys = uniform_keys::<u64>(20_000, 41);
    let reference = KeyCodec::std_sorted(&keys);
    let run = |op: u64| {
        let sorter = ShardedSorter::new(DevicePool::nvlink_mesh_cluster(2))
            .with_recombine_strategy(RecombineStrategy::PeerExchange)
            .with_fault_plan(FaultPlan::stall_transfer(0, op, 8.0));
        let mut sorted = keys.clone();
        let report = sorter.try_sort(&mut sorted).expect("stalls never kill");
        assert_eq!(sorted, reference);
        report
    };
    let stalled = run(1); // fires mid-exchange
    let clean = run(999); // never fires
    assert!(stalled.had_faults());
    assert!(!clean.had_faults());
    // Compare the purely-simulated critical path, not `end_to_end` — the
    // latter includes the measured (wall-clock) host concatenation, whose
    // jitter under parallel test load can swamp a microsecond-scale stall.
    assert!(
        stalled.critical_path.secs() > clean.critical_path.secs(),
        "an 8x stall must show up in the simulated schedule"
    );
}

/// One explicit device failure through the whole service stack: the batch
/// completes on the survivors, and the report + stats record the fault.
#[test]
fn service_survives_an_explicit_device_failure() {
    let sorter = ShardedSorter::new(DevicePool::titan_cluster(3))
        .with_fault_plan(FaultPlan::fail_device(1, 0));
    let pool = sorter.pool().clone();
    let service = SortService::start(
        sorter,
        ServiceConfig::default().with_max_linger(Duration::from_millis(5)),
    );
    let keys = uniform_keys::<u64>(30_000, 7);
    let ticket = service.submit(SortPayload::U64Keys(keys.clone())).unwrap();
    let outcome = ticket.wait().expect("two survivors must recover");
    let SortPayload::U64Keys(sorted) = outcome.payload else {
        panic!("wrong variant")
    };
    assert_eq!(sorted, KeyCodec::std_sorted(&keys));
    assert!(outcome.report.had_faults());
    assert!(outcome.report.requeued_elements() > 0);
    assert!(!pool.alive(1), "the engine must mark the device dead");
    let stats = service.stats_snapshot();
    assert!(stats.device_failures >= 1, "stats missed the fault");
    assert!(stats.requeued_elements > 0);
    assert!(stats.recovery_p50 > Duration::ZERO);
    // Telemetry carries the fault subtree for external scrapers.
    let snap = service.inspector().snapshot();
    let faults = snap.node("multi_gpu/faults").expect("faults subtree");
    assert!(faults.uint("device_failures").unwrap() >= 1);
    assert!(faults.uint("requeued_elements").unwrap() > 0);
    service.shutdown();
}

/// An out-of-core request recovers from a mid-stream device failure.
#[test]
fn ooc_lane_recovers_from_device_failure() {
    let sorter = ShardedSorter::new(tiny_memory_pool(2, 1 << 20))
        .with_fault_plan(FaultPlan::fail_device(0, 1));
    let service = SortService::start(
        sorter,
        ServiceConfig::default().with_over_budget(OverBudgetPolicy::OutOfCore),
    );
    let keys = uniform_keys::<u64>(150_000, 11);
    let ticket = service
        .submit(SortPayload::U64Keys(keys.clone()))
        .expect("over-budget admission");
    let outcome = ticket.wait().expect("the survivor must absorb the shard");
    let SortPayload::U64Keys(sorted) = outcome.payload else {
        panic!("wrong variant")
    };
    assert_eq!(sorted, KeyCodec::std_sorted(&keys));
    assert_eq!(outcome.batch.reason, FlushReason::OutOfCore);
    assert!(outcome.report.is_out_of_core());
    assert!(outcome.report.had_faults());
    let snap = service.inspector().snapshot();
    assert!(snap.node("multi_gpu/ooc").unwrap().uint("retries").unwrap() > 0);
    service.shutdown();
}

/// When every device dies the ticket resolves with the typed engine error,
/// and the now-degraded pool sheds subsequent submissions.
#[test]
fn all_devices_dead_is_a_typed_error_then_degraded_shedding() {
    let plan = FaultPlan::new(vec![
        FaultSpec {
            device: 0,
            op: 0,
            kind: FaultKind::DeviceFail,
        },
        FaultSpec {
            device: 1,
            op: 0,
            kind: FaultKind::DeviceFail,
        },
    ]);
    let sorter = ShardedSorter::new(DevicePool::titan_cluster(2)).with_fault_plan(plan);
    let service = SortService::start(
        sorter,
        ServiceConfig::default().with_max_linger(Duration::from_millis(5)),
    );
    let ticket = service
        .submit(SortPayload::U64Keys(uniform_keys::<u64>(10_000, 13)))
        .unwrap();
    let err = ticket.wait().unwrap_err();
    assert_eq!(
        err,
        TicketError::SortFailed(SortError::AllDevicesDead { failed: 2 })
    );
    // 0 of 2 alive → degraded: new load is shed with a typed rejection.
    let err = service
        .submit(SortPayload::U64Keys(vec![3, 1, 2]))
        .unwrap_err();
    assert_eq!(err, SubmitError::Degraded { alive: 0, total: 2 });
    let stats = service.shutdown();
    assert_eq!(stats.sort_failures, 1);
    assert_eq!(stats.rejected_degraded, 1);
}

/// Regression: cancelling one pending request removes exactly that
/// request's bytes from the class queue accounting — the survivor's bytes
/// stay, and only one cancellation is counted.
#[test]
fn cancellation_removes_exactly_the_cancelled_bytes() {
    let service = SortService::start(
        ShardedSorter::new(DevicePool::titan_cluster(2)),
        ServiceConfig::default()
            .with_max_linger(Duration::from_secs(30))
            .with_max_batch_bytes(u64::MAX),
    );
    let doomed = service
        .submit(SortPayload::U64Keys(uniform_keys::<u64>(5_000, 1)))
        .unwrap();
    let survivor = service
        .submit(SortPayload::U64Keys(uniform_keys::<u64>(3_000, 2)))
        .unwrap();
    doomed.cancel();
    // The cancel resolves the ticket (via the worker) before we inspect.
    assert_eq!(doomed.wait().unwrap_err(), TicketError::Cancelled);
    let snap = service.inspector().snapshot();
    let class = snap.node("service/class/u64").unwrap();
    // 3_000 keys × (8 key bytes + 8 tag bytes): exactly the survivor.
    assert_eq!(class.uint("pending_bytes"), Some(3_000 * 16));
    assert_eq!(class.uint("queue_depth"), Some(1));
    assert_eq!(service.stats_snapshot().cancelled, 1);
    assert_eq!(service.in_flight(), 1);
    // The survivor still sorts (drain at shutdown).
    service.shutdown();
    let outcome = survivor.wait().unwrap();
    assert_eq!(outcome.span.len, 3_000);
}

/// An injected engine panic is isolated: the ticket fails typed, the
/// worker keeps serving, and shutdown stays clean.
#[test]
fn worker_panic_is_isolated_and_the_service_survives() {
    let sorter = ShardedSorter::new(DevicePool::titan_cluster(2))
        .with_fault_plan(FaultPlan::panic_in_sort(0, 0));
    let service = SortService::start(
        sorter,
        ServiceConfig::default().with_max_linger(Duration::from_millis(5)),
    );
    let mut doomed = service
        .submit(SortPayload::U64Keys(uniform_keys::<u64>(8_000, 17)))
        .unwrap();
    match doomed.wait_timeout(NEVER_HANGS) {
        Err(TicketError::WorkerFailed) => {}
        other => panic!("expected WorkerFailed, got {other:?}"),
    }
    // The plan is exhausted and the pool intact: the next request works.
    let keys = uniform_keys::<u64>(6_000, 19);
    let ticket = service.submit(SortPayload::U64Keys(keys.clone())).unwrap();
    let outcome = ticket.wait().expect("service must survive the panic");
    let SortPayload::U64Keys(sorted) = outcome.payload else {
        panic!("wrong variant")
    };
    assert_eq!(sorted, KeyCodec::std_sorted(&keys));
    let stats = service.shutdown();
    assert!(stats.worker_failures >= 1);
    assert_eq!(stats.requests, 2);
}

/// Deadlines: an approaching deadline flushes the batch early
/// (`FlushReason::Deadline`), and an already-expired deadline resolves the
/// ticket with `DeadlineExceeded` instead of sorting.
#[test]
fn deadlines_flush_early_and_expire_typed() {
    let service = SortService::start(
        ShardedSorter::new(DevicePool::titan_cluster(2)),
        ServiceConfig::default()
            .with_max_linger(Duration::from_secs(30))
            .with_max_batch_bytes(u64::MAX),
    );
    // Without the deadline this request would linger 30 s; with it, the
    // worker wakes at 80 % of 2 s and dispatches.
    let keys = uniform_keys::<u64>(4_000, 23);
    let ticket = service
        .submit(SortPayload::U64Keys(keys.clone()).with_deadline(Duration::from_secs(2)))
        .unwrap();
    let outcome = ticket.wait().unwrap();
    assert_eq!(outcome.batch.reason, FlushReason::Deadline);
    let SortPayload::U64Keys(sorted) = outcome.payload else {
        panic!("wrong variant")
    };
    assert_eq!(sorted, KeyCodec::std_sorted(&keys));

    // A zero deadline can never be met: typed expiry, no sort.
    let ticket = service
        .submit(SortPayload::U64Keys(uniform_keys::<u64>(1_000, 29)).with_deadline(Duration::ZERO))
        .unwrap();
    assert_eq!(ticket.wait().unwrap_err(), TicketError::DeadlineExceeded);
    let stats = service.shutdown();
    assert!(stats.flushed_by_deadline >= 1);
    assert_eq!(stats.deadline_exceeded, 1);
}

/// Marking more than half the pool dead flips admission into degraded
/// shedding — through the shared health state, no restart involved.
#[test]
fn degraded_pool_sheds_new_load() {
    let sorter = ShardedSorter::new(DevicePool::titan_cluster(3));
    let pool = sorter.pool().clone();
    let service = SortService::start(sorter, ServiceConfig::default());
    assert!(service.admission_budget() > 0);
    pool.mark_dead(0);
    // 2 of 3 alive: not degraded yet, and the budget shrank to what the
    // survivors can hold.
    let healthy_budget = service.admission_budget();
    assert!(healthy_budget > 0);
    let t = service
        .submit(SortPayload::U64Keys(uniform_keys::<u64>(2_000, 31)))
        .unwrap();
    t.wait().unwrap();
    pool.mark_dead(2);
    // 1 of 3 alive: degraded.
    let err = service
        .submit(SortPayload::U64Keys(vec![3, 1, 2]))
        .unwrap_err();
    assert_eq!(err, SubmitError::Degraded { alive: 1, total: 3 });
    let stats = service.shutdown();
    assert_eq!(stats.rejected_degraded, 1);
    assert_eq!(stats.requests, 1);
}

/// The CI chaos matrix entry point: `CHAOS_SEED` selects a deterministic
/// fault plan, and the same seed must always produce the same plan (the
/// suite re-runs under a fixed seed matrix in CI).
#[test]
fn chaos_seed_scenario_is_deterministic() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let plan_a = FaultPlan::seeded(seed, 3, 3, 3);
    let plan_b = FaultPlan::seeded(seed, 3, 3, 3);
    assert_eq!(plan_a, plan_b, "seeded plans must be reproducible");

    let sorter = ShardedSorter::new(DevicePool::titan_cluster(3)).with_fault_plan(plan_a);
    let keys = uniform_keys::<u64>(25_000, seed);
    let mut sorted = keys.clone();
    match sorter.try_sort(&mut sorted) {
        Ok(report) => {
            assert_eq!(sorted, KeyCodec::std_sorted(&keys));
            for ev in &report.faults {
                assert!(ev.recovered);
            }
        }
        Err(err) => {
            assert!(matches!(
                err,
                SortError::AllDevicesDead { .. } | SortError::RetriesExhausted { .. }
            ));
            assert_eq!(sorted_multiset(sorted), sorted_multiset(keys));
        }
    }
}

/// The exchange leg of the chaos matrix: the same `CHAOS_SEED` drives the
/// same deterministic fault plan through the *peer-exchange* recombination
/// (`max_op` 4 so specs can land mid-exchange, not just at the local
/// sorts), with the same converge-or-fail-typed contract as above.
#[test]
fn exchange_chaos_seed_scenario_is_deterministic() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let plan_a = FaultPlan::seeded(seed, 3, 4, 3);
    let plan_b = FaultPlan::seeded(seed, 3, 4, 3);
    assert_eq!(plan_a, plan_b, "seeded plans must be reproducible");

    let sorter = ShardedSorter::new(DevicePool::nvlink_mesh_cluster(3))
        .with_recombine_strategy(RecombineStrategy::PeerExchange)
        .with_fault_plan(plan_a);
    let keys = uniform_keys::<u64>(25_000, seed);
    let mut sorted = keys.clone();
    match sorter.try_sort(&mut sorted) {
        Ok(report) => {
            assert_eq!(sorted, KeyCodec::std_sorted(&keys));
            assert_eq!(report.recombine, RecombineStrategy::PeerExchange);
            for ev in &report.faults {
                assert!(ev.recovered);
            }
        }
        Err(err) => {
            assert!(matches!(
                err,
                SortError::AllDevicesDead { .. } | SortError::RetriesExhausted { .. }
            ));
            assert_eq!(sorted_multiset(sorted), sorted_multiset(keys));
        }
    }
}
