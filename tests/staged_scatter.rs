//! Equivalence suite for the write-combining scatter and the phase-overlap
//! scheduler: every combination of the two hot-loop toggles must produce
//! byte-identical output to the unstaged sequential baseline and to `std`
//! sorting — across workloads (uniform / zipf / sorted / duplicate-heavy),
//! shapes (key-only and pairs), worker counts, and staging-line sizes,
//! including lines that do not divide block or bucket populations.

use hybrid_radix_sort::hrs_core::{Executor, HybridRadixSorter, Optimizations, SortConfig};
use hybrid_radix_sort::workloads::{pairs::verify_indexed_pair_sort, Distribution, KeyCodec};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

/// The four corners of the (staged scatter × phase overlap) toggle square.
fn hot_loop_variants() -> Vec<(&'static str, Optimizations)> {
    vec![
        ("staged+overlap", Optimizations::all_on()),
        ("staged", Optimizations::no_phase_overlap()),
        ("overlap", Optimizations::no_staged_scatter()),
        ("unstaged", Optimizations::unstaged_baseline()),
    ]
}

/// A configuration small enough that moderate inputs hit multiple passes,
/// partial staging lines and local sorts, with a caller-chosen line size.
fn lined_config(line_bytes: usize) -> SortConfig {
    let mut cfg = SortConfig::keys_32();
    cfg.local_sort_threshold = 120;
    cfg.merge_threshold = 41;
    cfg.keys_per_block = 96;
    cfg.local_sort_classes = SortConfig::default_classes(120);
    cfg.scatter_line_bytes = line_bytes;
    cfg
}

/// Odd and even line sizes; for u32 keys these yield 1 (staging disabled),
/// 2, 6, 15, 16 and 25 keys per line, so bucket tails regularly end
/// mid-line and drain through the partial-flush path.
const LINE_BYTES: [usize; 6] = [3, 8, 24, 63, 64, 100];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_toggle_corners_match_std_for_u32_keys(
        keys in proptest::collection::vec(any::<u32>(), 0..3500),
        line_idx in 0usize..LINE_BYTES.len(),
        workers_idx in 0usize..3,
    ) {
        let expected = KeyCodec::std_sorted(&keys);
        let cfg = lined_config(LINE_BYTES[line_idx]);
        for (name, opts) in hot_loop_variants() {
            let mut k = keys.clone();
            HybridRadixSorter::new(cfg.clone())
                .with_executor(Executor::with_workers(WORKER_COUNTS[workers_idx]))
                .with_optimizations(opts)
                .sort(&mut k);
            prop_assert_eq!(&k, &expected, "variant {} line {}", name, LINE_BYTES[line_idx]);
        }
    }

    #[test]
    fn all_toggle_corners_match_the_sequential_baseline_for_pairs(
        keys in proptest::collection::vec(any::<u32>(), 0..2500),
        line_idx in 0usize..LINE_BYTES.len(),
        workers_idx in 0usize..3,
    ) {
        let n = keys.len();
        let values: Vec<u32> = (0..n as u32).collect();
        let cfg = lined_config(LINE_BYTES[line_idx]);

        // The unstaged sequential run is the equivalence baseline the
        // tentpole promises byte-identity against.
        let mut base_keys = keys.clone();
        let mut base_vals = values.clone();
        HybridRadixSorter::new(cfg.clone())
            .with_executor(Executor::Sequential)
            .with_optimizations(Optimizations::unstaged_baseline())
            .sort_pairs(&mut base_keys, &mut base_vals);
        prop_assert!(verify_indexed_pair_sort(&keys, &base_keys, &base_vals));

        for (name, opts) in hot_loop_variants() {
            let mut k = keys.clone();
            let mut v = values.clone();
            HybridRadixSorter::new(cfg.clone())
                .with_executor(Executor::with_workers(WORKER_COUNTS[workers_idx]))
                .with_optimizations(opts)
                .sort_pairs(&mut k, &mut v);
            prop_assert_eq!(&k, &base_keys, "variant {}", name);
            prop_assert_eq!(&v, &base_vals, "variant {}", name);
        }
    }
}

#[test]
fn workload_matrix_is_equivalent_across_all_toggles() {
    let n = 30_000usize;
    let workloads: [(&str, Distribution); 4] = [
        ("uniform", Distribution::Uniform),
        ("zipf", Distribution::paper_zipf(n as u64 / 4)),
        ("sorted", Distribution::Sorted),
        // A tiny universe makes every digit bucket duplicate-heavy.
        ("dup-heavy", Distribution::paper_zipf(64)),
    ];
    for (wname, dist) in workloads {
        let keys: Vec<u32> = dist.generate(n, 0x5EED);
        let expected = KeyCodec::std_sorted(&keys);
        for workers in WORKER_COUNTS {
            for (vname, opts) in hot_loop_variants() {
                let ctx = format!("{wname}/{vname}/workers={workers}");
                let mut k = keys.clone();
                HybridRadixSorter::new(SortConfig::keys_32().scaled_for(n, 500_000_000))
                    .with_executor(Executor::with_workers(workers))
                    .with_optimizations(opts)
                    .sort(&mut k);
                assert_eq!(k, expected, "{ctx} (keys)");

                let mut k = keys.clone();
                let mut v: Vec<u32> = (0..n as u32).collect();
                HybridRadixSorter::new(SortConfig::pairs_32_32().scaled_for(n, 500_000_000))
                    .with_executor(Executor::with_workers(workers))
                    .with_optimizations(opts)
                    .sort_pairs(&mut k, &mut v);
                assert_eq!(k, expected, "{ctx} (pair keys)");
                assert!(
                    verify_indexed_pair_sort(&keys, &k, &v),
                    "{ctx} (pair values)"
                );
            }
        }
    }
}

#[test]
fn wide_keys_survive_odd_staging_lines() {
    // u64 keys with line sizes that leave 0, 1 or a prime number of keys
    // per line; the narrower final digit of 64-bit configs also exercises
    // the staging segment's max-radix capacity sizing.
    let keys: Vec<u64> = Distribution::Uniform.generate(50_000, 77);
    let expected = KeyCodec::std_sorted(&keys);
    for line_bytes in [7usize, 24, 56, 64] {
        let mut cfg = SortConfig::keys_64().scaled_for(50_000, 250_000_000);
        cfg.scatter_line_bytes = line_bytes;
        for workers in WORKER_COUNTS {
            let mut k = keys.clone();
            HybridRadixSorter::new(cfg.clone())
                .with_executor(Executor::with_workers(workers))
                .sort(&mut k);
            assert_eq!(k, expected, "line {line_bytes} workers {workers}");
        }
    }
}
