//! Race-ledger integration tests, compiled only under `--features
//! race-check`.
//!
//! With the feature on, every `SharedMut` accessor reports its claimed
//! range to the analysis crate's dynamic race ledger before touching
//! memory.  Two properties are asserted here:
//!
//! * sorting arbitrary inputs through the full hybrid pipeline — threaded
//!   executor, staged scatter, phase-overlap scheduling — never trips the
//!   ledger: the disjointness contracts the `unsafe` accessors rely on
//!   hold on real schedules, not just in the comments;
//! * a deliberately overlapping pair of cross-thread claims panics with a
//!   diagnostic naming both claim sites, proving the instrument actually
//!   bites (a checker that cannot fail checks nothing).

#![cfg(feature = "race-check")]

use hybrid_radix_sort::hrs_core::{Executor, HybridRadixSorter, SharedMut, SortConfig};
use hybrid_radix_sort::workloads::KeyCodec;
use proptest::prelude::*;
use std::sync::Barrier;

fn tiny_config(local: usize, kpb: usize) -> SortConfig {
    let mut cfg = SortConfig::keys_32();
    cfg.digit_bits = 8;
    cfg.local_sort_threshold = local;
    cfg.merge_threshold = local / 3 + 1;
    cfg.keys_per_block = kpb;
    cfg.local_sort_classes = SortConfig::default_classes(local);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn instrumented_sorts_never_trip_the_ledger(
        keys in proptest::collection::vec(any::<u64>(), 0..2500),
        local in 8usize..400,
        kpb in 16usize..600,
        workers in 2usize..5,
    ) {
        let expected = KeyCodec::std_sorted(&keys);
        let mut sorted = keys.clone();
        HybridRadixSorter::new(tiny_config(local, kpb))
            .with_executor(Executor::with_workers(workers))
            .sort(&mut sorted);
        prop_assert_eq!(sorted, expected);
    }
}

#[test]
fn disjoint_cross_thread_claims_are_allowed() {
    let mut buf = vec![0u32; 1024];
    let shared = SharedMut::new(&mut buf);
    let barrier = Barrier::new(2);
    std::thread::scope(|s| {
        for t in 0..2usize {
            let shared = &shared;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                // SAFETY: thread `t` claims exactly [t·512, t·512 + 512);
                // the two ranges are disjoint by construction.
                let half = unsafe { shared.slice_mut(t * 512, 512) };
                for (i, v) in half.iter_mut().enumerate() {
                    *v = (t * 512 + i) as u32;
                }
            });
        }
    });
    drop(shared);
    assert!(buf.iter().enumerate().all(|(i, &v)| v == i as u32));
}

#[test]
fn completed_writes_may_be_read_by_other_threads() {
    // The phase-overlap scheduler's pattern: a scatter completes a range
    // (DoneWrite), an external happens-before edge publishes it, and a
    // next-pass histogram task on another thread reads it.  The ledger
    // must not flag this.
    let mut buf = vec![0u64; 256];
    let shared = SharedMut::new(&mut buf);
    let src: Vec<u64> = (0..256).collect();
    // SAFETY: no other thread has access to the view yet.
    unsafe { shared.copy_from_slice_at(0, &src) };
    std::thread::scope(|s| {
        let shared = &shared;
        s.spawn(move || {
            // SAFETY: the copy above happened-before `spawn`, and no
            // thread writes the range while this borrow lives.
            let view = unsafe { shared.slice_ref(0, 256) };
            assert_eq!(view[255], 255);
        });
    });
    drop(shared);
}

#[test]
#[should_panic(expected = "race ledger")]
fn overlapping_cross_thread_writes_panic() {
    // Two threads claim ranges sharing [512, 600).  The barrier makes the
    // claims genuinely concurrent and cross-thread (an executor could
    // legally hand both tasks to one worker, where the overlap would be
    // sequenced and benign — spawning raw threads removes that escape).
    // Whichever thread claims second panics; the explicit joins re-raise
    // that panic with its original payload (a bare `thread::scope` exit
    // would replace it with "a scoped thread panicked"), so `should_panic`
    // can verify the diagnostic text.
    let mut buf = vec![0u8; 1024];
    let shared = SharedMut::new(&mut buf);
    let barrier = Barrier::new(2);
    std::thread::scope(|s| {
        let handles: Vec<_> = [(0usize, 600usize), (512, 512)]
            .into_iter()
            .map(|(start, len)| {
                let shared = &shared;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    // SAFETY: deliberately *violates* the disjointness
                    // contract — under race-check the ledger panics before
                    // either borrow is used, which is this test's point.
                    // The returned borrows are dropped immediately and
                    // never dereferenced, so even the claim that wins
                    // stays unused.
                    let _ = unsafe { shared.slice_mut(start, len) };
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}
