//! Integration tests of the batch sort service: N concurrent requests of
//! mixed sizes and key classes must round-trip through `SortService`
//! identical to sorting each individually, through both the coalescing and
//! the one-request-per-batch schedulers, and across the
//! saturation/backpressure path.

use hybrid_radix_sort::multi_gpu::{DevicePool, ShardedSorter};
use hybrid_radix_sort::sort_service::{
    ServiceConfig, SortPayload, SortService, SortTicket, SubmitError,
};
use proptest::prelude::*;
use std::time::Duration;

/// What sorting one request *individually* must produce.  Key-only
/// payloads sort exactly; pair payloads sort by key with values permuted
/// along — ties may order their values differently between a batched and
/// an individual run (the hybrid radix sort is not stable), so pairs are
/// compared as `(key, value)` multisets in key order.
fn expected(payload: &SortPayload) -> SortPayload {
    match payload {
        SortPayload::U32Keys(keys) => {
            let mut k = keys.clone();
            k.sort_unstable();
            SortPayload::U32Keys(k)
        }
        SortPayload::U64Keys(keys) => {
            let mut k = keys.clone();
            k.sort_unstable();
            SortPayload::U64Keys(k)
        }
        SortPayload::U32Pairs { keys, values } => {
            let mut zip: Vec<(u32, u32)> =
                keys.iter().copied().zip(values.iter().copied()).collect();
            zip.sort_unstable();
            SortPayload::U32Pairs {
                keys: zip.iter().map(|&(k, _)| k).collect(),
                values: zip.iter().map(|&(_, v)| v).collect(),
            }
        }
        SortPayload::U64Pairs { keys, values } => {
            let mut zip: Vec<(u64, u32)> =
                keys.iter().copied().zip(values.iter().copied()).collect();
            zip.sort_unstable();
            SortPayload::U64Pairs {
                keys: zip.iter().map(|&(k, _)| k).collect(),
                values: zip.iter().map(|&(_, v)| v).collect(),
            }
        }
    }
}

/// Canonicalises a sorted payload for comparison: pair payloads are
/// re-sorted by `(key, value)` so tie-order differences don't matter;
/// key-only payloads are compared verbatim.
fn canonical(payload: &SortPayload) -> SortPayload {
    match payload {
        SortPayload::U32Keys(_) | SortPayload::U64Keys(_) => payload.clone(),
        _ => expected(payload),
    }
}

/// Builds the deterministic mixed-request workload: sizes/classes/shapes
/// cycle so every batch mixes key-only with pair requests of both widths.
fn mixed_payloads(sizes: &[usize]) -> Vec<SortPayload> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let seed = (i as u64 + 1) * 37;
            match i % 4 {
                0 => SortPayload::U32Keys(hybrid_radix_sort::workloads::uniform_keys(n, seed)),
                1 => SortPayload::U64Keys(hybrid_radix_sort::workloads::uniform_keys(n, seed)),
                2 => SortPayload::U32Pairs {
                    keys: hybrid_radix_sort::workloads::uniform_keys(n, seed),
                    values: (0..n as u32).rev().collect(),
                },
                _ => SortPayload::U64Pairs {
                    keys: hybrid_radix_sort::workloads::uniform_keys(n, seed),
                    values: (0..n as u32).collect(),
                },
            }
        })
        .collect()
}

/// Submits every payload from its own thread (true concurrent submission),
/// waits for all tickets and returns the outcomes' payloads in request
/// order.
fn round_trip(service: &SortService, payloads: Vec<SortPayload>) -> Vec<SortPayload> {
    let tickets: Vec<SortTicket> = std::thread::scope(|scope| {
        let handles: Vec<_> = payloads
            .into_iter()
            .map(|p| {
                // queue_depth covers every request in these tests, so no
                // submission may bounce.
                scope.spawn(move || service.submit(p).expect("admission"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    tickets
        .into_iter()
        .map(|t| t.wait().expect("ticket resolves").payload)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn batched_results_equal_individual_sorts(
        sizes in proptest::collection::vec(0usize..3_000, 3..10),
        linger_ms in 0u64..20,
    ) {
        let payloads = mixed_payloads(&sizes);
        let individual: Vec<SortPayload> = payloads.iter().map(expected).collect();
        let service = SortService::start(
            ShardedSorter::new(DevicePool::titan_cluster(2)),
            ServiceConfig::default()
                .with_max_linger(Duration::from_millis(linger_ms))
                .with_queue_depth(payloads.len().max(1)),
        );
        let results = round_trip(&service, payloads);
        let stats = service.shutdown();
        prop_assert_eq!(stats.requests as usize, results.len());
        for (i, (got, want)) in results.iter().zip(individual.iter()).enumerate() {
            prop_assert_eq!(&canonical(got), want, "request {}", i);
        }
    }

    #[test]
    fn one_request_per_batch_matches_too(
        sizes in proptest::collection::vec(0usize..2_000, 2..6),
    ) {
        let payloads = mixed_payloads(&sizes);
        let individual: Vec<SortPayload> = payloads.iter().map(expected).collect();
        let service = SortService::start(
            ShardedSorter::new(DevicePool::titan_cluster(2)),
            ServiceConfig::unbatched().with_queue_depth(payloads.len().max(1)),
        );
        let results = round_trip(&service, payloads);
        let stats = service.shutdown();
        // Coalescing disabled: exactly one batch per request.
        prop_assert_eq!(stats.batches, stats.requests);
        for (got, want) in results.iter().zip(individual.iter()) {
            prop_assert_eq!(&canonical(got), want);
        }
    }
}

#[test]
fn saturation_backpressure_is_lossless() {
    // queue_depth 3, long linger, huge thresholds: three requests fill the
    // service, the fourth bounces with `Saturated`, and after the drain
    // resolves the first three the lane is open again.
    let service = SortService::start(
        ShardedSorter::new(DevicePool::titan_cluster(2)),
        ServiceConfig::default()
            .with_queue_depth(3)
            .with_max_linger(Duration::from_secs(30))
            .with_max_batch_bytes(u64::MAX),
    );
    let payloads = mixed_payloads(&[1_500, 900, 700]);
    let individual: Vec<SortPayload> = payloads.iter().map(expected).collect();
    let tickets: Vec<SortTicket> = payloads
        .into_iter()
        .map(|p| service.submit(p).unwrap())
        .collect();
    assert_eq!(service.in_flight(), 3);
    match service
        .submit(SortPayload::U32Keys(vec![5, 3, 4]))
        .unwrap_err()
    {
        SubmitError::Saturated {
            in_flight,
            queue_depth,
        } => {
            assert_eq!(in_flight, 3);
            assert_eq!(queue_depth, 3);
        }
        other => panic!("expected saturation, got {other}"),
    }
    // Every admitted request still resolves correctly through the drain.
    let stats = service.shutdown();
    assert_eq!(stats.requests, 3);
    for (t, want) in tickets.into_iter().zip(individual.iter()) {
        let got = t.wait().unwrap().payload;
        assert_eq!(&canonical(&got), want);
    }
}

#[test]
fn coalesced_batch_shares_one_report() {
    let service = SortService::start(
        ShardedSorter::new(DevicePool::titan_cluster(2)),
        ServiceConfig::default()
            .with_max_linger(Duration::from_millis(150))
            .with_max_batch_bytes(u64::MAX)
            .with_queue_depth(8),
    );
    let tickets: Vec<SortTicket> = (0..3)
        .map(|s| {
            service
                .submit(SortPayload::U64Keys(
                    hybrid_radix_sort::workloads::uniform_keys(2_000, s + 1),
                ))
                .unwrap()
        })
        .collect();
    let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    assert!(
        outcomes
            .windows(2)
            .all(|w| w[0].batch.batch == w[1].batch.batch),
        "expected one coalesced batch"
    );
    let report = &outcomes[0].report;
    assert_eq!(report.n, 6_000);
    assert_eq!(report.requests.len(), 3);
    // Spans tile the concatenated batch in submission order.
    assert_eq!(outcomes[0].span.offset, 0);
    assert_eq!(outcomes[1].span.offset, 2_000);
    assert_eq!(outcomes[2].span.offset, 4_000);
    service.shutdown();
}
