//! Shape checks over the regenerated figures: who wins, by roughly what
//! factor, and where the crossovers fall.  Absolute numbers are not expected
//! to match the paper (the substrate is an analytical GPU model, not the
//! authors' Titan X), but the qualitative structure of every figure must.

use hybrid_radix_sort::baselines::{GpuLsdRadixSort, ReportedDistribution};
use hybrid_radix_sort::experiments::checks::{check_fig06_claims, min_speedup, speedup_at};
use hybrid_radix_sort::experiments::figures::{
    ablation, fig02_histogram_utilisation, fig06_on_gpu, fig08_chunks, fig09_paradis, fig10_latest,
    Shape,
};
use hybrid_radix_sort::experiments::{PaperScale, Series};

fn scale() -> PaperScale {
    PaperScale::fast()
}

#[test]
fn figure_2_contention_drop_and_mitigation() {
    let series = fig02_histogram_utilisation();
    let atomics = &series[0];
    let reduction = &series[1];
    // Atomics only: clear drop at q = 1, saturation from q = 3 on.
    assert!(atomics.get("1").unwrap() < 60.0);
    assert!(atomics.get("3").unwrap() > 90.0);
    assert!(atomics.get("256").unwrap() > 95.0);
    // Thread reduction removes the drop.
    assert!(reduction.get("1").unwrap() > 80.0);
    assert!(reduction.min() > 80.0);
}

#[test]
fn figure_6_claims_hold_for_all_four_shapes() {
    for shape in Shape::all() {
        let checks = check_fig06_claims(shape, &scale());
        for c in &checks {
            assert!(c.holds, "{}: measured {:.2}", c.claim, c.measured);
        }
    }
}

#[test]
fn figure_6_pairs_sort_faster_than_keys_in_gb_per_second() {
    // Section 6.1: "Comparing the hybrid radix sort's performance for
    // sorting key-value pairs to the performance shown for sorting keys
    // only, we see a 20 % increase in the amount of data being sorted per
    // second."
    let keys = fig06_on_gpu(Shape::Keys64, &scale());
    let pairs = fig06_on_gpu(Shape::Pairs64, &scale());
    let keys_uniform = keys[0].points.first().unwrap().1;
    let pairs_uniform = pairs[0].points.first().unwrap().1;
    assert!(
        pairs_uniform > keys_uniform * 1.05,
        "pairs {pairs_uniform} vs keys {keys_uniform}"
    );
}

#[test]
fn figure_7_crossover_cub_wins_only_for_small_skewed_inputs() {
    // Figure 7: CUB has the edge for very small, highly skewed inputs, but
    // the hybrid radix sort wins from ~2 M keys upwards even for its
    // worst-case distribution.
    use hybrid_radix_sort::experiments::figures::fig07_input_size;
    let series = fig07_input_size(Shape::Keys64, &scale());
    let hrs_worst: &Series = series.iter().find(|s| s.label == "HRS - 0.00 bit").unwrap();
    let cub: &Series = series.iter().find(|s| s.label == "CUB").unwrap();
    // Small input (250 k keys = 2 MB): CUB wins for the worst case.
    let small = hrs_worst.points.first().unwrap();
    let cub_small = cub.get(&small.0).unwrap();
    assert!(
        small.1 < cub_small * 1.1,
        "HRS {} vs CUB {}",
        small.1,
        cub_small
    );
    // Large input (2 GB): the hybrid sort wins even for the worst case.
    let large = hrs_worst.points.last().unwrap();
    let cub_large = cub.get(&large.0).unwrap();
    assert!(large.1 > cub_large, "HRS {} vs CUB {}", large.1, cub_large);
}

#[test]
fn figure_8_ordering_naive_cub_slowest_heterogeneous_best_at_medium_chunk_counts() {
    let bars = fig08_chunks(&scale());
    let total = |label: &str| {
        bars.iter()
            .find(|b| b.label == label)
            .map(|b| b.total())
            .unwrap()
    };
    // Naive CUB is the slowest variant; naive HRS improves on it.
    assert!(total("CUB") > total("HRS"));
    // Every heterogeneous configuration beats naive CUB end to end.
    for s in ["s=2", "s=3", "s=4", "s=8", "s=16"] {
        assert!(total(s) < total("CUB"), "{s}");
    }
    // The chunked-sort component shrinks monotonically with more chunks.
    let chunked = |label: &str| bars.iter().find(|b| b.label == label).unwrap().chunked_sort;
    assert!(chunked("s=16") <= chunked("s=8"));
    assert!(chunked("s=8") <= chunked("s=4"));
    assert!(chunked("s=4") <= chunked("s=2"));
}

#[test]
fn figure_9_heterogeneous_sort_beats_reported_paradis() {
    for dist in [ReportedDistribution::Uniform, ReportedDistribution::Zipf075] {
        let series = fig09_paradis(dist, &scale());
        let total = series
            .iter()
            .find(|s| s.label == "heterogeneous sort")
            .unwrap();
        let paradis = series
            .iter()
            .find(|s| s.label == "PARADIS (reported)")
            .unwrap();
        for (x, _) in &paradis.points {
            let speedup = speedup_at(paradis, total, x).unwrap();
            assert!(speedup > 1.0, "{dist:?} at {x}: speed-up {speedup}");
        }
        // The speed-up shrinks with the input size (the CPU merge becomes
        // the bottleneck), exactly as in the paper.
        let first = speedup_at(paradis, total, &paradis.points.first().unwrap().0).unwrap();
        let last = speedup_at(paradis, total, &paradis.points.last().unwrap().0).unwrap();
        assert!(first > last, "{dist:?}: {first} !> {last}");
    }
}

#[test]
fn figure_10_ordering_of_the_latest_baselines() {
    let series = fig10_latest(Shape::Keys32, &scale());
    let hrs = &series[0];
    let cub_old = series.iter().find(|s| s.label == "CUB, v. 1.5.1").unwrap();
    let cub_new = series.iter().find(|s| s.label == "CUB, v. 1.6.4").unwrap();
    let multisplit = series.iter().find(|s| s.label == "Multisplit").unwrap();
    // HRS still beats every newer baseline for all distributions.
    assert!(min_speedup(hrs, cub_new) > 1.1);
    assert!(min_speedup(hrs, multisplit) > 1.1);
    // CUB 1.6.4 improves on 1.5.1; Multisplit sits between them for 32-bit
    // keys.
    let x = "32.00";
    assert!(cub_new.get(x).unwrap() > cub_old.get(x).unwrap());
    assert!(multisplit.get(x).unwrap() > cub_old.get(x).unwrap());
    assert!(multisplit.get(x).unwrap() < cub_new.get(x).unwrap());
}

#[test]
fn ablation_signs_match_the_appendix() {
    // Use a three-point entropy ladder to keep the functional runs fast:
    // uniform, moderately skewed, constant.
    use hybrid_radix_sort::workloads::EntropyLevel;
    let levels = vec![
        ("uniform".to_string(), EntropyLevel::uniform()),
        ("skewed".to_string(), EntropyLevel::with_and_count(2)),
        ("constant".to_string(), EntropyLevel::constant()),
    ];
    let series = ablation(Shape::Keys32, &scale(), &levels);
    let get = |label: &str, x: &str| -> f64 {
        series
            .iter()
            .find(|s| s.label == label)
            .unwrap()
            .get(x)
            .unwrap()
    };
    // Disabling optimisations never helps by more than noise (~5 %).
    for s in &series {
        for (x, y) in &s.points {
            assert!(*y < 7.0, "{} at {x}: {y}", s.label);
        }
    }
    // The synergistic pair hurts at least as much as either alone for the
    // skewed distribution, and the combined variant is clearly negative.
    let combo = get("no merge + single config", "skewed");
    assert!(combo <= get("single local sort config", "skewed") + 1.0);
    assert!(combo <= get("no bucket merging", "skewed") + 1.0);
    // The thread-reduction histogram matters for the constant distribution
    // of 32-bit keys (Figure 11's right-hand side).
    assert!(get("no thread red. histo", "constant") < -5.0);
    // Everything-off is at least as bad as the worst single optimisation.
    let all_off = get("all optimisations off", "constant");
    assert!(all_off <= get("no thread red. histo", "constant") + 1.0);
}

#[test]
fn expected_speedup_matches_the_traffic_argument_for_constant_inputs() {
    // Section 6.1: for the zero-entropy distribution the speed-up over CUB
    // boils down to the reduced number of passes — 1.75× for 32-bit keys
    // (7 vs 4 passes) and 1.625× for 64-bit keys (13 vs 8 passes).  Allow a
    // generous band around those ratios.
    let scale = scale();
    for (shape, expected) in [(Shape::Keys32, 1.75), (Shape::Keys64, 1.625)] {
        let series = fig06_on_gpu(shape, &scale);
        let hrs = series[0].get("0.00").unwrap();
        let cub = series[1].get("0.00").unwrap();
        let ratio = hrs / cub;
        assert!(
            (ratio - expected).abs() / expected < 0.35,
            "{shape:?}: ratio {ratio:.2} vs expected {expected}"
        );
    }
    // Sanity: the CUB model's pass counts are the paper's.
    assert_eq!(GpuLsdRadixSort::cub_1_5_1().config.num_passes(32), 7);
    assert_eq!(GpuLsdRadixSort::cub_1_5_1().config.num_passes(64), 13);
}
