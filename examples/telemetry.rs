//! Live observability end to end: run a batch sort service under a small
//! mixed workload, read its statistics *while requests are in flight*, and
//! dump the full inspection tree — service counters, sharded-engine
//! metrics, per-device core sorters, span aggregates — as one JSON
//! document.
//!
//! ```text
//! cargo run --release --example telemetry
//! ```

use hybrid_radix_sort::prelude::*;

fn main() {
    let service = SortService::start(
        ShardedSorter::new(DevicePool::titan_cluster(2)),
        ServiceConfig::default().with_queue_depth(64),
    );

    // A mixed stream: both key classes, keys-only and pairs.
    let tickets: Vec<SortTicket> = (0..16)
        .map(|i| {
            let n = 4_096 + 512 * i;
            let payload = match i % 3 {
                0 => SortPayload::U32Keys(workloads::uniform_keys::<u32>(n, i as u64)),
                1 => SortPayload::U64Keys(workloads::uniform_keys::<u64>(n, i as u64)),
                _ => SortPayload::U64Pairs {
                    keys: workloads::uniform_keys::<u64>(n, i as u64),
                    values: (0..n as u32).collect(),
                },
            };
            service.submit(payload).expect("admission")
        })
        .collect();

    // Live counters — no shutdown, no locks on the sorting path.
    let live = service.stats_snapshot();
    println!(
        "in flight: {} | admitted so far: {} | batches so far: {}",
        service.in_flight(),
        live.requests,
        live.batches
    );

    for t in tickets {
        t.wait().expect("ticket resolves");
    }

    let stats = service.stats_snapshot();
    println!(
        "\nafter the flood: {} requests in {} batches (mean {:.1} req/batch)",
        stats.requests,
        stats.batches,
        stats.mean_batch_requests()
    );
    println!(
        "submit→outcome latency: p50 {:?}, p99 {:?}",
        stats.latency_p50, stats.latency_p99
    );

    // The whole tree, one call, JSON-serialisable.  `service` and
    // `multi_gpu` sit next to the per-device `core/dev*` sorter subtrees
    // and the `spans/` aggregates.
    let snapshot = service.inspector().snapshot();
    println!("\ntop-level telemetry layers:");
    for child in &snapshot.children {
        println!("  {}", child.name);
    }
    let json = snapshot.to_json();
    println!("\nsnapshot JSON ({} bytes); excerpt:", json.len());
    for line in json.lines().take(12) {
        println!("  {line}");
    }

    // Round-trips: the JSON parses back into an identical tree.
    let parsed = InspectNode::from_json(&json).expect("snapshot parses");
    assert_eq!(parsed, snapshot);

    service.shutdown();
}
