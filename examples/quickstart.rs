//! Quickstart: sort keys and key-value pairs with the hybrid radix sort and
//! inspect the simulated GPU execution report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hybrid_radix_sort::prelude::*;

fn main() {
    // 1. Sort plain 64-bit keys.
    let mut keys = hybrid_radix_sort::workloads::uniform_keys::<u64>(2_000_000, 42);
    let sorter = HybridRadixSorter::with_defaults();
    let report = sorter.sort(&mut keys);
    assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    println!("sorted {} keys", report.n);
    println!("  {}", report.summary());
    println!("{}", report.pass_table());

    // 2. Sort key-value pairs (a row-id payload travelling with each key).
    let mut pair_keys = hybrid_radix_sort::workloads::uniform_keys::<u32>(1_000_000, 7);
    let original = pair_keys.clone();
    let mut row_ids: Vec<u32> = (0..pair_keys.len() as u32).collect();
    let report = sorter.sort_pairs(&mut pair_keys, &mut row_ids);
    assert!(
        hybrid_radix_sort::workloads::pairs::verify_indexed_pair_sort(
            &original, &pair_keys, &row_ids
        )
    );
    println!(
        "sorted {} key-value pairs at a simulated {}",
        report.n, report.simulated.sorting_rate
    );

    // 3. Floats and signed integers work through the order-preserving codec.
    let mut floats: Vec<f64> = (0..1_000).map(|i| (500 - i) as f64 * 0.25).collect();
    sorter.sort(&mut floats);
    assert!(floats.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "float keys sorted: first = {}, last = {}",
        floats[0], floats[999]
    );
}
