//! A hybrid CPU+GPU fleet: two simulated Titan X cards plus a real CPU
//! socket driven by the threaded execution backend.
//!
//! ```text
//! cargo run --release --example cpu_socket
//! ```
//!
//! The GPU shards are sorted functionally with simulated timings; the CPU
//! shard is sorted by real `std::thread::scope` workers and its *measured*
//! wall-clock enters the schedule.  The example also shows the threaded
//! backend stand-alone: the same sorter, sequential vs threaded, on the
//! same input — with the arena footprint staying flat across repeats.
//! (The minimal versions of both demonstrations live as doctests on the
//! `hrs_core::exec` and `hrs_core::arena` module docs.)

use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::workloads::uniform_keys;
use std::time::Instant;

const N: usize = 8_000_000;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(4);
    println!("generating {N} uniform u32 keys ({workers} workers available)...\n");
    let keys = uniform_keys::<u32>(N, 7);

    // 1. The threaded backend stand-alone.
    for exec in [Executor::Sequential, Executor::with_workers(workers)] {
        let sorter = HybridRadixSorter::with_defaults().with_executor(exec);
        let mut warm = keys.clone(); // warm the arena
        sorter.sort(&mut warm);
        let mut k = keys.clone();
        let start = Instant::now();
        sorter.sort(&mut k);
        let secs = start.elapsed().as_secs_f64();
        assert!(k.windows(2).all(|w| w[0] <= w[1]));
        println!(
            "backend {:<12} {:>7.1} ms  ({:.1} Mkeys/s, arena {} KiB)",
            sorter.executor().label(),
            secs * 1e3,
            N as f64 / secs / 1e6,
            sorter.arena_stats().total_bytes() / 1024,
        );
    }

    // 2. The hybrid fleet: the CPU socket registers as one more device.
    let pool = DevicePool::titan_cluster(2).add_cpu_socket(workers);
    let sorter = ShardedSorter::new(pool);
    let mut k = keys.clone();
    let report = sorter.sort(&mut k);
    assert!(k.windows(2).all(|w| w[0] <= w[1]));

    println!("\n== 2x Titan X (Pascal) + 1 CPU socket");
    println!("{}\n", report.summary());
    println!("{}", report.shard_table());
    for shard in &report.shards {
        if let Some(measured) = shard.measured_sort {
            println!(
                "CPU shard: {} keys sorted for real in {:.1} ms",
                shard.n,
                measured.as_secs_f64() * 1e3
            );
        }
    }
}
