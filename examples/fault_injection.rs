//! Fault injection walkthrough: killing a simulated GPU mid-sort and
//! watching the engine and the service absorb it.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```
//!
//! Three acts:
//!
//! 1. **Engine recovery** — a 3-device pool loses device 1 on its very
//!    first shard; the engine marks it dead, re-partitions over the two
//!    survivors and requeues the lost shard.  The report records the fault.
//! 2. **Service QoS** — the same failure through the full sort service,
//!    plus a request with a deadline and a cancelled request, with the live
//!    stats counters picking all of it up.
//! 3. **Degraded mode** — more than half the pool dies and the service
//!    starts shedding new load with a typed rejection instead of queueing
//!    work it cannot finish.

use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::workloads::uniform_keys;
use std::time::Duration;

const N: usize = 8_000_000;

fn engine_recovery() {
    println!("== 1. engine recovery: device 1 dies on its first shard\n");
    let plan = FaultPlan::fail_device(1, 0);
    let sorter = ShardedSorter::new(DevicePool::titan_cluster(3)).with_fault_plan(plan);
    let pool = sorter.pool().clone();

    let mut keys = uniform_keys::<u64>(N, 7);
    let report = sorter.try_sort(&mut keys).expect("two survivors recover");
    assert!(keys.windows(2).all(|w| w[0] <= w[1]));

    for ev in &report.faults {
        println!(
            "fault: device {} {} in round {} -> requeued {} keys (backoff {:?}, recovered: {})",
            ev.device,
            ev.kind.label(),
            ev.round,
            ev.requeued,
            ev.backoff,
            ev.recovered
        );
    }
    println!(
        "pool after the run: {}/{} devices alive (device 1 alive: {})",
        pool.alive_count(),
        pool.len(),
        pool.alive(1)
    );
    println!("\n{}\n", report.summary());
}

fn service_qos() {
    println!("== 2. service QoS: failure + deadline + cancellation\n");
    let sorter = ShardedSorter::new(DevicePool::titan_cluster(3))
        .with_fault_plan(FaultPlan::fail_device(2, 0));
    let service = SortService::start(
        sorter,
        ServiceConfig::default().with_max_linger(Duration::from_millis(200)),
    );

    // A plain request rides through the injected failure transparently.
    let survivor = service
        .submit(SortPayload::U64Keys(uniform_keys::<u64>(N / 4, 11)))
        .unwrap();

    // A deadline turns the linger timer into a hard dispatch bound.
    let prompt = service
        .submit(
            SortPayload::U64Keys(uniform_keys::<u64>(N / 8, 13))
                .with_deadline(Duration::from_secs(5)),
        )
        .unwrap();

    // And a cancelled ticket releases its queue bytes without sorting.
    let doomed = service
        .submit(SortPayload::U64Keys(uniform_keys::<u64>(N / 8, 17)))
        .unwrap();
    doomed.cancel();

    let outcome = survivor.wait().expect("survivors absorb the lost shard");
    println!(
        "survivor request: {} keys sorted, batch flushed by `{}`, faults recorded: {}",
        outcome.span.len,
        outcome.batch.reason.label(),
        outcome.report.faults.len()
    );
    let outcome = prompt.wait().expect("deadline was generous");
    println!(
        "deadline request: {} keys sorted, batch flushed by `{}`",
        outcome.span.len,
        outcome.batch.reason.label()
    );
    match doomed.wait() {
        Err(TicketError::Cancelled) => println!("cancelled request: resolved as cancelled"),
        other => println!("cancelled request resolved as {other:?} (raced the flush)"),
    }

    let stats = service.shutdown();
    println!(
        "\nstats: requests={} cancelled={} device_failures={} requeued_elements={} recovery_p50={:?}\n",
        stats.requests,
        stats.cancelled,
        stats.device_failures,
        stats.requeued_elements,
        stats.recovery_p50,
    );
}

fn degraded_mode() {
    println!("== 3. degraded mode: majority of the pool dies\n");
    let sorter = ShardedSorter::new(DevicePool::titan_cluster(3));
    let pool = sorter.pool().clone();
    let service = SortService::start(sorter, ServiceConfig::default());

    pool.mark_dead(0);
    pool.mark_dead(1);
    match service.submit(SortPayload::U64Keys(vec![3, 1, 2])) {
        Err(SubmitError::Degraded { alive, total }) => {
            println!("submission shed: only {alive} of {total} devices alive")
        }
        other => println!("unexpected admission result: {other:?}"),
    }
    let stats = service.shutdown();
    println!("stats: rejected_degraded={}", stats.rejected_degraded);
}

fn main() {
    engine_recovery();
    service_qos();
    degraded_mode();
}
