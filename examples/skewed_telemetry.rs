//! Skewed telemetry workload: timestamps and counters from devices are
//! heavily skewed (most counters are tiny, a few are huge).  This example
//! generates the paper's entropy ladder, sorts each level and shows how the
//! hybrid radix sort's pass count and local-sort usage adapt to the skew,
//! including the ablation of the skew-specific optimisations.
//!
//! ```text
//! cargo run --release --example skewed_telemetry
//! ```

use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::workloads::ENTROPY_LEVELS_32;

fn main() {
    let n = 1_000_000usize;
    let sorter = HybridRadixSorter::with_defaults();

    println!("entropy (bits) | counting passes | local sorts | simulated rate");
    println!("{}", "-".repeat(70));
    for (level, label) in EntropyLevel::ladder().into_iter().zip(ENTROPY_LEVELS_32) {
        let mut keys: Vec<u32> = Distribution::Entropy(level).generate(n, 3);
        let report = sorter.sort(&mut keys);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        println!(
            "{:>14.2} | {:>15} | {:>11} | {}",
            label,
            report.counting_passes(),
            report.local.invocations,
            report.simulated.sorting_rate
        );
    }

    // The same skewed input with the skew mitigations disabled: the sort is
    // still correct, only the simulated performance changes.
    let mut keys: Vec<u32> = Distribution::Entropy(EntropyLevel::constant()).generate(n, 3);
    let slow = HybridRadixSorter::with_defaults().with_optimizations(Optimizations::all_off());
    let report = slow.sort(&mut keys);
    println!(
        "constant distribution with all optimisations off: {}",
        report.simulated.sorting_rate
    );
}
