//! Sorting floating-point and signed keys: measurement values (f64),
//! account balances (i64) and temperatures (f32) all sort through the
//! order-preserving bijections of Section 4.6 — including negative zero and
//! infinities.
//!
//! ```text
//! cargo run --release --example float_keys
//! ```

use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::workloads::SplitMix64;

fn main() {
    let sorter = HybridRadixSorter::with_defaults();
    let mut rng = SplitMix64::new(2024);

    // Sensor measurements: f64 values centred on zero, including specials.
    let mut measurements: Vec<f64> = (0..2_000_000)
        .map(|_| (rng.next_f64() - 0.5) * 1e6)
        .collect();
    measurements.push(f64::NEG_INFINITY);
    measurements.push(f64::INFINITY);
    measurements.push(-0.0);
    measurements.push(0.0);
    let report = sorter.sort(&mut measurements);
    assert!(measurements.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(measurements[0], f64::NEG_INFINITY);
    assert_eq!(*measurements.last().unwrap(), f64::INFINITY);
    println!(
        "sorted {} f64 measurements ({} counting passes)",
        report.n,
        report.counting_passes()
    );

    // Account balances: signed 64-bit integers, many negative.
    let mut balances: Vec<i64> = (0..1_000_000)
        .map(|_| rng.next_u64() as i64 / 1024)
        .collect();
    sorter.sort(&mut balances);
    assert!(balances.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "sorted {} i64 balances (min = {}, max = {})",
        balances.len(),
        balances[0],
        balances.last().unwrap()
    );

    // Temperatures: f32 keys with an associated station id.
    let temps: Vec<f32> = (0..500_000)
        .map(|_| (rng.next_f64() as f32 - 0.5) * 80.0)
        .collect();
    let mut sorted_temps = temps.clone();
    let mut stations: Vec<u32> = (0..temps.len() as u32).collect();
    sorter.sort_pairs(&mut sorted_temps, &mut stations);
    assert!(
        hybrid_radix_sort::workloads::pairs::verify_indexed_pair_sort(
            &temps,
            &sorted_temps,
            &stations
        )
    );
    println!("sorted {} (f32 temperature, station) pairs", temps.len());
}
