//! Database index construction: sort (key, row-id) pairs of a fact table so
//! that a clustered index / sorted run can be written out, then verify the
//! run with a sort-merge-join-style scan against a second sorted column.
//!
//! This is the "index creation and sort-merge joins" motivation from the
//! paper's introduction.
//!
//! ```text
//! cargo run --release --example index_build
//! ```

use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::workloads::{pairs::verify_indexed_pair_sort, Distribution};

fn main() {
    let n = 4_000_000usize;
    // Fact table: a foreign-key column with a Zipfian distribution (a few
    // very popular dimension keys) plus the row id of every tuple.
    let fact_fk: Vec<u64> = Distribution::paper_zipf(100_000).generate(n, 1);
    let mut sorted_fk = fact_fk.clone();
    let mut fact_rowids: Vec<u32> = (0..n as u32).collect();

    let sorter = HybridRadixSorter::with_defaults();
    let report = sorter.sort_pairs(&mut sorted_fk, &mut fact_rowids);
    assert!(verify_indexed_pair_sort(&fact_fk, &sorted_fk, &fact_rowids));
    println!("built fact-table index over {n} rows");
    println!("  simulated GPU time: {}", report.simulated.total);
    println!(
        "  counting passes: {}, local sorts: {}",
        report.counting_passes(),
        report.local.invocations
    );

    // Dimension table: unique keys, already sorted after its own index build.
    let mut dim_keys: Vec<u64> = Distribution::Uniform.generate(100_000, 2);
    sorter.sort(&mut dim_keys);

    // Sort-merge join: both sides are sorted, a single interleaved scan
    // produces the join result.
    let mut matches = 0usize;
    let mut d = 0usize;
    for &fk in &sorted_fk {
        while d < dim_keys.len() && dim_keys[d] < fk {
            d += 1;
        }
        if d < dim_keys.len() && dim_keys[d] == fk {
            matches += 1;
        }
    }
    println!("  sort-merge join probe finished: {matches} fact rows matched a dimension key");
}
