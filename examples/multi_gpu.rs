//! Sharding 50 million simulated keys over four GPUs.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```
//!
//! The example sorts 50M 32-bit keys twice: over four identical Titan X
//! (Pascal) cards, and over a deliberately mixed pool (Tesla P100 on
//! NVLink, two Titan X and a GTX 980 on PCIe) whose shard sizes follow each
//! device's memory bandwidth.  Both runs print the aggregated report and
//! the simulated transfer/sort schedule.

use hybrid_radix_sort::prelude::*;
use hybrid_radix_sort::workloads::uniform_keys;

const N: usize = 50_000_000;

fn run(label: &str, pool: DevicePool, keys: &[u32]) {
    let sorter = ShardedSorter::new(pool).with_merge_threads(
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(4),
    );
    let mut k = keys.to_vec();
    let report = sorter.sort(&mut k);
    assert!(k.windows(2).all(|w| w[0] <= w[1]), "output must be sorted");

    println!("== {label}");
    println!("{}", report.summary());
    println!();
    println!("{}", report.shard_table());
    println!(
        "fleet-wide counting passes: {}",
        report.combined.counting_passes()
    );
    println!(
        "fleet-wide local sorts: {} over {} keys",
        report.combined.local.invocations, report.combined.local.n_keys
    );
    println!();
}

fn main() {
    println!("generating {N} uniform u32 keys...");
    let keys = uniform_keys::<u32>(N, 2024);

    run(
        "4x Titan X (Pascal), PCIe 3.0",
        DevicePool::titan_cluster(4),
        &keys,
    );
    run(
        "P100 (NVLink2) + 2x Titan X + GTX 980",
        DevicePool::mixed_demo(),
        &keys,
    );

    // The schedule of the first few events of a 2-device run, for a quick
    // look at the overlap structure.
    let mut k = keys[..1_000_000].to_vec();
    let report = ShardedSorter::new(DevicePool::titan_cluster(2)).sort(&mut k);
    println!("== simulated schedule (1M keys, 2 devices)");
    println!("{}", report.timeline.render());
}
