//! Out-of-core / heterogeneous sorting: an input that would not fit into GPU
//! device memory is split into chunks, pipelined over the (simulated) PCIe
//! bus, sorted chunk by chunk and merged on the CPU with the parallel
//! multiway merge — Section 5 of the paper.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use hybrid_radix_sort::prelude::*;

fn main() {
    let n = 8_000_000usize;
    let mut keys = hybrid_radix_sort::workloads::uniform_keys::<u64>(n, 99);

    let sorter = HeterogeneousSorter::with_defaults().with_merge_threads(6);
    for s in [2usize, 4, 8] {
        let mut run = keys.clone();
        let report = sorter.sort(&mut run, s);
        assert!(run.windows(2).all(|w| w[0] <= w[1]));
        println!(
            "s = {:>2}: chunked sort {:>10}, CPU merge {:>10} (measured {:?}), end-to-end {:>10}",
            s,
            report.breakdown.chunked_sort,
            report.breakdown.cpu_merge,
            report.measured_merge,
            report.breakdown.end_to_end
        );
    }

    // Paper-scale what-if: how long would 64 GB of 64-bit/64-bit pairs take
    // end to end, given the measured merge throughput of this machine?
    let gpu_sort_64gb = SimTime::from_secs(0.42 * 16.0); // ~0.42 s per 4 GB chunk
    let merge_throughput = 2.0e9; // bytes/s, conservative six-core estimate
    let breakdown = sorter.simulate_end_to_end(
        64_000_000_000,
        16,
        gpu_sort_64gb,
        SimTime::from_secs(64_000_000_000.0 / merge_throughput),
    );
    println!(
        "64 GB what-if: chunked sort {}, CPU merge {}, end-to-end {}",
        breakdown.chunked_sort, breakdown.cpu_merge, breakdown.end_to_end
    );

    // The same idea composed over a *pool*: every device of a sharded sort
    // streams its own shard through the chunked pipeline, so the input may
    // exceed the sum of device memories.  Shrink the device memories so the
    // small demo input is genuinely out of core.
    let mut small = DeviceSpec::titan_x_pascal();
    small.device_memory_bytes = 1 << 20; // 1 MiB "GPUs"
    let pool = DevicePool::homogeneous(2, SimDevice::on_pcie3(small));
    println!(
        "\npool of 2 × 1 MiB devices: in-core admission budget = {} bytes",
        pool.batch_budget_bytes()
    );
    let mut run = keys[..500_000].to_vec(); // 4 MB of keys: over budget
    let report = ShardedSorter::new(pool).sort_out_of_core(&mut run);
    assert!(run.windows(2).all(|w| w[0] <= w[1]));
    println!(
        "out-of-core sharded sort: {} chunks over {} devices, critical path {}, end-to-end {}",
        report.ooc_chunks.len(),
        report.shards.len(),
        report.critical_path,
        report.end_to_end
    );

    keys.truncate(0);
}
